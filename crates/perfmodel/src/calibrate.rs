//! Calibration utilities: estimating the machine peak and sweeping kernel
//! efficiency profiles (the data behind the paper's Figure 1).

use crate::executor::Executor;
use crate::profile::SquareProfile;
use lamb_expr::{Algorithm, KernelCall, KernelOp, OperandId, OperandInfo, OperandRole};
use lamb_kernels::{gemm_new, BlockConfig};
use lamb_matrix::random::random_seeded;
use lamb_matrix::{Side, Trans, Uplo};
use std::time::Instant;

/// Build a single-call algorithm wrapping `op`, with freshly named operands of
/// the right shapes. Used to benchmark kernels in isolation through the
/// ordinary [`Executor`] interface.
#[must_use]
pub fn single_call_algorithm(op: KernelOp) -> Algorithm {
    let (out_rows, out_cols) = op.output_shape();
    let mut operands = Vec::new();
    let inputs: Vec<OperandId> = match op {
        KernelOp::Gemm {
            transa,
            transb,
            m,
            n,
            k,
        } => {
            let (ar, ac) = match transa {
                Trans::No => (m, k),
                Trans::Yes => (k, m),
            };
            let (br, bc) = match transb {
                Trans::No => (k, n),
                Trans::Yes => (n, k),
            };
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: ar,
                cols: ac,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "A".into(),
            });
            operands.push(OperandInfo {
                id: OperandId(1),
                rows: br,
                cols: bc,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "B".into(),
            });
            vec![OperandId(0), OperandId(1)]
        }
        KernelOp::Syrk { trans, n, k, .. } => {
            let (ar, ac) = match trans {
                Trans::No => (n, k),
                Trans::Yes => (k, n),
            };
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: ar,
                cols: ac,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "A".into(),
            });
            vec![OperandId(0)]
        }
        KernelOp::Symm { side, m, n, .. } => {
            let sym_dim = match side {
                Side::Left => m,
                Side::Right => n,
            };
            // The operand SYMM treats as symmetric must be declared so, or
            // the IR claims symmetry the operand table does not back
            // (caught by lamb-verify's structure-flow pass).
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: sym_dim,
                cols: sym_dim,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::Spd,
                name: "A".into(),
            });
            operands.push(OperandInfo {
                id: OperandId(1),
                rows: m,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "B".into(),
            });
            vec![OperandId(0), OperandId(1)]
        }
        KernelOp::Trmm {
            side, uplo, m, n, ..
        }
        | KernelOp::Trsm {
            side, uplo, m, n, ..
        } => {
            // The triangle's order is B's row count on the left and its
            // column count on the right.
            let order = match side {
                Side::Left => m,
                Side::Right => n,
            };
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: order,
                cols: order,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::Triangular(uplo),
                name: "L".into(),
            });
            operands.push(OperandInfo {
                id: OperandId(1),
                rows: m,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "B".into(),
            });
            vec![OperandId(0), OperandId(1)]
        }
        KernelOp::Potrf { n, .. } => {
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: n,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::Spd,
                name: "S".into(),
            });
            vec![OperandId(0)]
        }
        KernelOp::CopyTriangle { n, .. } => {
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: n,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "A".into(),
            });
            vec![OperandId(0)]
        }
        KernelOp::Getrf { n } => {
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: n,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "A".into(),
            });
            vec![OperandId(0)]
        }
        KernelOp::Qr { m, n } => {
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: m,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "A".into(),
            });
            vec![OperandId(0)]
        }
        // The packed-factor consumers take the factor as an algorithm input
        // — the structure-flow pass trusts externally supplied factors, the
        // same boundary the factor cache uses.
        KernelOp::Ormqr { m, n, k } => {
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: m,
                cols: n + 1,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "F".into(),
            });
            operands.push(OperandInfo {
                id: OperandId(1),
                rows: m,
                cols: k,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "B".into(),
            });
            vec![OperandId(0), OperandId(1)]
        }
        KernelOp::FactorTri { n, .. } => {
            // A square packed LU-shaped factor: valid for both triangles.
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: n,
                cols: n + 1,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "F".into(),
            });
            vec![OperandId(0)]
        }
        KernelOp::PivotApply { side, m, n } => {
            // The packed pivot factor's order is the permuted dimension: B's
            // row count on the left, its column count on the right.
            let r = match side {
                Side::Left => m,
                Side::Right => n,
            };
            operands.push(OperandInfo {
                id: OperandId(0),
                rows: r,
                cols: r + 1,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "F".into(),
            });
            operands.push(OperandInfo {
                id: OperandId(1),
                rows: m,
                cols: n,
                role: OperandRole::Input,
                structure: lamb_matrix::Structure::General,
                name: "B".into(),
            });
            vec![OperandId(0), OperandId(1)]
        }
    };
    // For benchmarking purposes the triangle copy is also given a distinct
    // output operand (an `n x n` workspace); inside real algorithms the copy
    // is performed in place on the intermediate. POTRF's output is the
    // explicitly triangular Cholesky factor, as everywhere else in the IR.
    let out_structure = match &op {
        KernelOp::Potrf { uplo, .. } | KernelOp::FactorTri { uplo, .. } => {
            lamb_matrix::Structure::Triangular(*uplo)
        }
        _ => lamb_matrix::Structure::General,
    };
    let out_id = OperandId(operands.len());
    operands.push(OperandInfo {
        id: out_id,
        rows: out_rows,
        cols: out_cols,
        role: OperandRole::Output,
        structure: out_structure,
        name: "X".into(),
    });
    let output = out_id;
    let label = format!("X := {op}");
    Algorithm {
        name: format!("single call {}", op.mnemonic()),
        operands,
        calls: vec![KernelCall {
            op,
            inputs,
            output,
            label,
        }],
    }
}

/// Estimate the achievable peak FLOP rate of this machine by running a few
/// medium-sized GEMMs and taking the best observed rate. The value is meant to
/// normalise efficiencies for reporting, not to be a vendor-sheet peak.
#[must_use]
pub fn estimate_peak_flops(cfg: &BlockConfig, size: usize, trials: usize) -> f64 {
    let a = random_seeded(size, size, 11);
    let b = random_seeded(size, size, 12);
    let flops = 2.0 * (size as f64).powi(3);
    let mut best = 0.0f64;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let c = gemm_new(Trans::No, &a, Trans::No, &b, cfg).expect("square gemm");
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(c);
        best = best.max(flops / dt);
    }
    best
}

/// Names of the compute kernels swept by the square calibration, in sweep
/// order (the paper's Figure 1 trio plus the triangular, SPD and general
/// factorisation extensions, then the right-side variants of the sided
/// kernels — appended last so profile indices of the original eight are
/// stable across store versions).
pub const SQUARE_SWEEP_KERNELS: [&str; 11] = [
    "gemm", "syrk", "symm", "trmm", "trsm", "potrf", "getrf", "qr", "symm_r", "trmm_r", "trsm_r",
];

/// The square-operand kernel operations of the calibration sweep at a given
/// size: the paper's Figure 1 trio (GEMM, SYRK, SYMM) extended with the
/// triangular kernels (TRMM, TRSM), the Cholesky factorisation (POTRF), the
/// general factorisations (GETRF, square QR) and the right-side variants of
/// the sided kernels, in [`SQUARE_SWEEP_KERNELS`] order.
#[must_use]
pub fn square_ops(size: usize) -> [KernelOp; 11] {
    [
        KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: size,
            n: size,
            k: size,
        },
        KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n: size,
            k: size,
        },
        KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m: size,
            n: size,
        },
        KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: size,
            n: size,
        },
        KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: size,
            n: size,
        },
        KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: size,
        },
        KernelOp::Getrf { n: size },
        KernelOp::Qr { m: size, n: size },
        KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Lower,
            m: size,
            n: size,
        },
        KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: size,
            n: size,
        },
        KernelOp::Trsm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: size,
            n: size,
        },
    ]
}

/// Sweep the per-kernel efficiency curves on square operands using any
/// executor — the data behind the paper's Figure 1, extended with the
/// triangular kernels.
pub fn measure_square_profiles(executor: &mut dyn Executor, sizes: &[usize]) -> Vec<SquareProfile> {
    let machine = executor.machine().clone();
    let mut curves: Vec<(String, Vec<usize>, Vec<f64>)> = SQUARE_SWEEP_KERNELS
        .iter()
        .map(|name| ((*name).to_string(), Vec::new(), Vec::new()))
        .collect();
    for &size in sizes {
        for (idx, op) in square_ops(size).into_iter().enumerate() {
            let flops = op.flops();
            let alg = single_call_algorithm(op);
            let seconds = executor.time_isolated_call(&alg, 0);
            let eff = machine.efficiency(flops, seconds);
            curves[idx].1.push(size);
            curves[idx].2.push(eff);
        }
    }
    curves
        .into_iter()
        .map(|(name, sizes, effs)| SquareProfile::new(&name, sizes, effs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::SimulatedExecutor;

    #[test]
    fn single_call_algorithms_are_well_formed() {
        let ops = [
            KernelOp::Gemm {
                transa: Trans::Yes,
                transb: Trans::No,
                m: 5,
                n: 6,
                k: 7,
            },
            KernelOp::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::No,
                n: 8,
                k: 3,
            },
            KernelOp::Symm {
                side: Side::Left,
                uplo: Uplo::Upper,
                m: 4,
                n: 9,
            },
            KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                m: 7,
                n: 4,
            },
            KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 4,
                n: 7,
            },
            KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 6,
                n: 5,
            },
            KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                m: 5,
                n: 6,
            },
            KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 7,
            },
            KernelOp::CopyTriangle {
                uplo: Uplo::Lower,
                n: 6,
            },
            KernelOp::Getrf { n: 9 },
            KernelOp::Qr { m: 11, n: 4 },
            KernelOp::Ormqr { m: 11, n: 4, k: 3 },
            KernelOp::FactorTri {
                uplo: Uplo::Upper,
                n: 5,
            },
            KernelOp::PivotApply {
                side: Side::Left,
                m: 8,
                n: 2,
            },
            KernelOp::PivotApply {
                side: Side::Right,
                m: 2,
                n: 8,
            },
        ];
        for op in ops {
            let alg = single_call_algorithm(op.clone());
            assert!(alg.is_well_formed(), "{op:?}");
            assert_eq!(alg.calls.len(), 1);
            assert_eq!(alg.flops(), op.flops());
        }
    }

    #[test]
    fn gemm_operand_shapes_respect_transposition() {
        let alg = single_call_algorithm(KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::Yes,
            m: 3,
            n: 4,
            k: 5,
        });
        // op(A) is 3x5 so stored A is 5x3; op(B) is 5x4 so stored B is 4x5.
        let a = alg.operand(OperandId(0)).unwrap();
        let b = alg.operand(OperandId(1)).unwrap();
        assert_eq!((a.rows, a.cols), (5, 3));
        assert_eq!((b.rows, b.cols), (4, 5));
        let x = alg.output().unwrap();
        assert_eq!((x.rows, x.cols), (3, 4));
    }

    #[test]
    fn simulated_square_profiles_reproduce_figure1_ordering() {
        let mut sim = SimulatedExecutor::paper_like();
        let sizes = [100, 400, 800, 1600, 3000];
        let profiles = measure_square_profiles(&mut sim, &sizes);
        assert_eq!(profiles.len(), SQUARE_SWEEP_KERNELS.len());
        for (profile, name) in profiles.iter().zip(SQUARE_SWEEP_KERNELS) {
            assert_eq!(profile.kernel, name);
        }
        let gemm = &profiles[0];
        // GEMM dominates every other kernel at every sampled size (Figure 1,
        // extended to the triangular kernels).
        for other in &profiles[1..] {
            for i in 0..sizes.len() {
                assert!(
                    gemm.efficiencies[i] >= other.efficiencies[i],
                    "{}",
                    other.kernel
                );
            }
        }
        // Efficiency grows with size and ends up high for GEMM.
        assert!(gemm.efficiencies.last().unwrap() > &0.8);
        assert!(gemm.efficiencies[0] < gemm.efficiencies[sizes.len() - 1]);
    }

    #[test]
    fn peak_estimate_is_positive_and_finite() {
        let peak = estimate_peak_flops(&BlockConfig::default(), 96, 1);
        assert!(peak.is_finite());
        assert!(
            peak > 1.0e6,
            "even a tiny machine exceeds 1 MFLOP/s: {peak}"
        );
    }
}
