//! Analytic kernel-efficiency models.
//!
//! The execution time of a kernel call is `flops / (peak · efficiency)`, so
//! everything interesting about a machine+library combination is captured by
//! the *shape* of the efficiency surface. The analytic model below reproduces
//! the qualitative features the paper identifies as the drivers of anomalies
//! (Sections 3.1, 4.1.3, 4.2.3):
//!
//! 1. efficiency ramps up with every operand dimension and saturates
//!    (Figure 1);
//! 2. on large square operands GEMM, SYRK and SYMM are close, with GEMM on
//!    top (Figure 1), but for *small symmetric orders* SYRK and SYMM fall far
//!    behind GEMM — which is exactly the regime in which the paper's
//!    `A·Aᵀ·B` anomalies are abundant (Figure 11: for small `d0` the
//!    GEMM-based Algorithms 3/4 are fastest while the SYRK/SYMM-based
//!    Algorithms 1/2 are cheapest);
//! 3. the library switches internal algorithmic variants at certain sizes,
//!    producing *abrupt* efficiency changes (the first transition type of
//!    Figures 8 and 11);
//! 4. away from switch points the surface changes smoothly (the second,
//!    gradual transition type).

use lamb_expr::KernelOp;
use lamb_matrix::Side;

/// Saturating ramp `x / (x + half)`: 0 at zero size, 0.5 at `half`, → 1.
fn ramp(x: usize, half: f64) -> f64 {
    let x = x as f64;
    x / (x + half)
}

/// A kernel-efficiency model: maps a kernel call (with its dimensions) to an
/// efficiency in `(0, 1]`.
pub trait EfficiencyModel: Send + Sync {
    /// Efficiency of the given operation.
    fn efficiency(&self, op: &KernelOp) -> f64;

    /// Efficiency of GEMM on square operands of the given order — the curve
    /// plotted in the paper's Figure 1.
    fn square_gemm_efficiency(&self, size: usize) -> f64 {
        self.efficiency(&KernelOp::Gemm {
            transa: lamb_matrix::Trans::No,
            transb: lamb_matrix::Trans::No,
            m: size,
            n: size,
            k: size,
        })
    }
}

/// Parameters of the analytic ramp/plateau efficiency surfaces.
///
/// GEMM has its own absolute surface; SYRK and SYMM are expressed *relative*
/// to the GEMM surface of the corresponding shape, with a relative factor
/// `base + gain · s(order, half)` that is small for small symmetric orders and
/// approaches `base + gain` (slightly below 1) for large ones — reproducing
/// Figure 1's "small but noticeable" gaps on large squares and the large gaps
/// at small `d0` that drive the `A·Aᵀ·B` anomalies.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticEfficiencyModel {
    /// Asymptotic efficiency of GEMM.
    pub gemm_max: f64,
    /// Half-saturation sizes of GEMM in the `m`, `n` and `k` dimensions.
    pub gemm_half: (f64, f64, f64),
    /// SYRK efficiency relative to same-shape GEMM: `(base, gain, half)` in
    /// the symmetric order `n`.
    pub syrk_rel: (f64, f64, f64),
    /// SYMM efficiency relative to same-shape GEMM: `(base, gain, half)` in
    /// the symmetric order.
    pub symm_rel: (f64, f64, f64),
    /// TRMM efficiency relative to same-shape GEMM: `(base, gain, half)` in
    /// the triangular order.
    pub trmm_rel: (f64, f64, f64),
    /// TRSM efficiency relative to same-shape GEMM: `(base, gain, half)` in
    /// the triangular order. The solve's sequential dependency chain keeps it
    /// further below GEMM than any other kernel, especially at small orders —
    /// the regime where its halved FLOP count is most thoroughly defeated by
    /// its lower FLOP rate (the anomaly mechanism of the triangular family).
    pub trsm_rel: (f64, f64, f64),
    /// POTRF efficiency relative to the same-order square GEMM:
    /// `(base, gain, half)` in the factored order. The factorisation's
    /// recursive dependency structure (panel solves feeding trailing
    /// updates) keeps its FLOP rate below every multiplication kernel at
    /// small and mid-sized orders — so the `n³/3` FLOP saving of a
    /// Cholesky-based SPD solve need not translate into a time saving, the
    /// anomaly mechanism of the SPD family.
    pub potrf_rel: (f64, f64, f64),
    /// GETRF efficiency relative to the same-order square GEMM:
    /// `(base, gain, half)` in the factored order. Partial pivoting adds row
    /// searches and swaps on top of POTRF-style panel/update recursion, so
    /// the LU rate sits slightly below POTRF's at every order — and the
    /// general solve's `2n³/3` factor cost is even easier to defeat at small
    /// orders than the Cholesky one.
    pub getrf_rel: (f64, f64, f64),
    /// QR efficiency relative to the `(m, n, n)` GEMM: `(base, gain, half)`
    /// in the reflector count `n`. Householder panel factorisation is
    /// dominated by skinny rank-1-ish updates until the blocked trailing
    /// update takes over, so QR ramps latest of all the factorisations.
    pub qr_rel: (f64, f64, f64),
    /// ORMQR efficiency relative to the `(m, k, n)` GEMM: `(base, gain,
    /// half)` in the reflector count. Blocked reflector application is
    /// GEMM-rich, so it sits well above the factorisations but below GEMM.
    pub ormqr_rel: (f64, f64, f64),
    /// Whether abrupt internal-variant switches are modelled.
    pub variant_switches: bool,
}

impl Default for AnalyticEfficiencyModel {
    fn default() -> Self {
        AnalyticEfficiencyModel {
            gemm_max: 0.93,
            gemm_half: (30.0, 30.0, 46.0),
            syrk_rel: (0.30, 0.64, 420.0),
            symm_rel: (0.45, 0.49, 350.0),
            trmm_rel: (0.38, 0.56, 390.0),
            trsm_rel: (0.22, 0.62, 520.0),
            potrf_rel: (0.18, 0.64, 560.0),
            getrf_rel: (0.17, 0.63, 580.0),
            qr_rel: (0.15, 0.62, 640.0),
            ormqr_rel: (0.34, 0.58, 360.0),
            variant_switches: true,
        }
    }
}

impl AnalyticEfficiencyModel {
    /// The default model but with the abrupt variant-switch discontinuities
    /// disabled, leaving only smooth ramps. Used by the ablation bench that
    /// separates the two transition types of Figures 8/11.
    #[must_use]
    pub fn smooth() -> Self {
        AnalyticEfficiencyModel {
            variant_switches: false,
            ..AnalyticEfficiencyModel::default()
        }
    }

    /// The GEMM efficiency surface (including variant switches).
    #[must_use]
    pub fn gemm_efficiency(&self, m: usize, n: usize, k: usize) -> f64 {
        self.gemm_max
            * ramp(m, self.gemm_half.0)
            * ramp(n, self.gemm_half.1)
            * ramp(k, self.gemm_half.2)
            * self.gemm_variant_factor(m, n, k)
    }

    /// Multiplicative factor modelling the library's internal variant choice
    /// for GEMM. The thresholds are in the inner dimension `k` (panel depth)
    /// and the output shape, mimicking a library that switches between a
    /// copy-based packed kernel and small-dimension special cases.
    fn gemm_variant_factor(&self, m: usize, n: usize, k: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if k < 96 {
            f *= 0.86;
        } else if k < 224 {
            f *= 0.95;
        }
        if n < 24 {
            f *= 0.82;
        }
        if m < 24 {
            f *= 0.88;
        }
        f
    }

    /// Variant factor for SYRK (switches on the order of the triangular
    /// result and on the panel depth).
    fn syrk_variant_factor(&self, n: usize, k: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if n < 256 {
            f *= 0.92;
        }
        if k < 128 {
            f *= 0.93;
        }
        f
    }

    /// Variant factor for SYMM (switches on the order of the symmetric
    /// operand and on the width of the other operand).
    fn symm_variant_factor(&self, m_sym: usize, n_other: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if m_sym < 192 {
            f *= 0.93;
        }
        if n_other < 32 {
            f *= 0.84;
        }
        f
    }

    /// Variant factor for TRMM (switches on the triangular order and the
    /// right-hand-side width, mimicking a library that falls back to an
    /// unblocked path for thin problems).
    fn trmm_variant_factor(&self, m_tri: usize, n_rhs: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if m_tri < 224 {
            f *= 0.91;
        }
        if n_rhs < 32 {
            f *= 0.85;
        }
        f
    }

    /// Variant factor for TRSM: the substitution recurrence limits blocking,
    /// so the switches bite harder and earlier than TRMM's.
    fn trsm_variant_factor(&self, m_tri: usize, n_rhs: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if m_tri < 320 {
            f *= 0.88;
        }
        if n_rhs < 48 {
            f *= 0.82;
        }
        f
    }

    /// Variant factor for POTRF: the factorisation switches from a blocked
    /// right-looking path to an unblocked one below a crossover order, and
    /// panel solves dominate for mid-sized problems.
    fn potrf_variant_factor(&self, n: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if n < 384 {
            f *= 0.89;
        }
        if n < 64 {
            f *= 0.80;
        }
        f
    }

    /// Variant factor for GETRF: like POTRF's blocked/unblocked crossover,
    /// with a deeper small-order penalty from the pivot searches.
    fn getrf_variant_factor(&self, n: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if n < 384 {
            f *= 0.90;
        }
        if n < 64 {
            f *= 0.78;
        }
        f
    }

    /// Variant factor for QR: the library switches from a blocked
    /// compact-WY path to an unblocked Householder loop for thin panels.
    fn qr_variant_factor(&self, n: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if n < 320 {
            f *= 0.90;
        }
        if n < 48 {
            f *= 0.80;
        }
        f
    }

    /// Variant factor for ORMQR (switches on the reflector count and on the
    /// right-hand-side width, like the triangular kernels).
    fn ormqr_variant_factor(&self, n: usize, k: usize) -> f64 {
        if !self.variant_switches {
            return 1.0;
        }
        let mut f = 1.0;
        if n < 256 {
            f *= 0.92;
        }
        if k < 32 {
            f *= 0.85;
        }
        f
    }

    fn rel(&self, params: (f64, f64, f64), order: usize) -> f64 {
        let (base, gain, half) = params;
        base + gain * ramp(order, half)
    }
}

impl EfficiencyModel for AnalyticEfficiencyModel {
    fn efficiency(&self, op: &KernelOp) -> f64 {
        let e = match *op {
            KernelOp::Gemm { m, n, k, .. } => self.gemm_efficiency(m, n, k),
            KernelOp::Syrk { n, k, .. } => {
                self.gemm_efficiency(n, n, k)
                    * self.rel(self.syrk_rel, n)
                    * self.syrk_variant_factor(n, k)
            }
            KernelOp::Symm { side, m, n, .. } => {
                let (sym_dim, other) = match side {
                    Side::Left => (m, n),
                    Side::Right => (n, m),
                };
                self.gemm_efficiency(sym_dim, other, sym_dim)
                    * self.rel(self.symm_rel, sym_dim)
                    * self.symm_variant_factor(sym_dim, other)
            }
            KernelOp::Trmm { side, m, n, .. } => {
                // The surface depends on the triangular order and the width
                // of the rectangular operand, whichever side the triangle
                // multiplies from (the `trmm_r` surface mirrors the left one,
                // exactly like SYMM's two sides).
                let (order, other) = match side {
                    Side::Left => (m, n),
                    Side::Right => (n, m),
                };
                self.gemm_efficiency(order, other, order)
                    * self.rel(self.trmm_rel, order)
                    * self.trmm_variant_factor(order, other)
            }
            KernelOp::Trsm { side, m, n, .. } => {
                let (order, other) = match side {
                    Side::Left => (m, n),
                    Side::Right => (n, m),
                };
                self.gemm_efficiency(order, other, order)
                    * self.rel(self.trsm_rel, order)
                    * self.trsm_variant_factor(order, other)
            }
            KernelOp::Potrf { n, .. } => {
                self.gemm_efficiency(n, n, n)
                    * self.rel(self.potrf_rel, n)
                    * self.potrf_variant_factor(n)
            }
            KernelOp::Getrf { n } => {
                self.gemm_efficiency(n, n, n)
                    * self.rel(self.getrf_rel, n)
                    * self.getrf_variant_factor(n)
            }
            KernelOp::Qr { m, n } => {
                self.gemm_efficiency(m, n, n) * self.rel(self.qr_rel, n) * self.qr_variant_factor(n)
            }
            KernelOp::Ormqr { m, n, k } => {
                self.gemm_efficiency(m, k, n)
                    * self.rel(self.ormqr_rel, n)
                    * self.ormqr_variant_factor(n, k)
            }
            // The data-movement ops have no floating-point work; report a
            // nominal efficiency so callers never divide by zero.
            KernelOp::CopyTriangle { .. }
            | KernelOp::FactorTri { .. }
            | KernelOp::PivotApply { .. } => 1.0,
        };
        e.clamp(1.0e-4, 1.0)
    }
}

/// Efficiency surface of the *reference* backend
/// ([`crate::ReferenceBackend`]): unblocked scalar loops for the BLAS-3
/// multiplication family, everything else delegated to the native blocked
/// kernels.
///
/// The naive loops have no packing, no dispatch and no threading overhead, so
/// at very small operands they *beat* the blocked path (whose efficiency
/// collapses under its fixed costs there) — but they never block for cache,
/// so their rate decays towards a low memory-bound floor as the operands
/// outgrow it. That real crossover is what per-call backend selection
/// exploits: a plan can route a tiny triangular update through the reference
/// loops while the large trailing GEMM stays on the native backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceEfficiencyModel {
    /// The native surface used for the delegated kernels (factorisations and
    /// data movement, which the reference backend runs natively anyway).
    pub native: AnalyticEfficiencyModel,
    /// Asymptotic (cache-thrashing) efficiency of the scalar loops.
    pub floor: f64,
    /// Extra efficiency at vanishing size, where the absence of packing and
    /// dispatch overhead dominates.
    pub small_gain: f64,
    /// Half-decay work order of the small-size advantage.
    pub half: f64,
}

impl Default for ReferenceEfficiencyModel {
    fn default() -> Self {
        ReferenceEfficiencyModel {
            native: AnalyticEfficiencyModel::default(),
            floor: 0.008,
            small_gain: 0.052,
            half: 200.0,
        }
    }
}

impl EfficiencyModel for ReferenceEfficiencyModel {
    fn efficiency(&self, op: &KernelOp) -> f64 {
        match op {
            KernelOp::Gemm { .. }
            | KernelOp::Syrk { .. }
            | KernelOp::Symm { .. }
            | KernelOp::Trmm { .. }
            | KernelOp::Trsm { .. } => {
                // One flat surface in the *work order* (the cube root of the
                // multiply-add count): scalar loops have no shape-dependent
                // blocking, so only the total volume of work matters.
                let order = ((op.flops().max(2) as f64) / 2.0).cbrt();
                (self.floor + self.small_gain * self.half / (order + self.half)).clamp(1.0e-4, 1.0)
            }
            _ => self.native.efficiency(op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_matrix::{Trans, Uplo};

    fn gemm_op(m: usize, n: usize, k: usize) -> KernelOp {
        KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m,
            n,
            k,
        }
    }

    fn syrk_op(n: usize, k: usize) -> KernelOp {
        KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n,
            k,
        }
    }

    fn symm_op(m: usize, n: usize) -> KernelOp {
        KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m,
            n,
        }
    }

    #[test]
    fn efficiency_is_bounded_and_monotone_in_size() {
        let model = AnalyticEfficiencyModel::default();
        let mut last = 0.0;
        for size in [8, 32, 128, 512, 1024, 2048, 3000] {
            let e = model.square_gemm_efficiency(size);
            assert!(e > 0.0 && e <= 1.0);
            assert!(
                e >= last,
                "square GEMM efficiency must not decrease with size"
            );
            last = e;
        }
        assert!(
            last > 0.8,
            "large square GEMM should run near peak, got {last}"
        );
    }

    #[test]
    fn gemm_dominates_syrk_and_symm_on_squares() {
        // Figure 1: GEMM is the most efficient kernel; SYRK and SYMM trail.
        let model = AnalyticEfficiencyModel::default();
        for size in [100, 300, 600, 1000, 2000] {
            let g = model.efficiency(&gemm_op(size, size, size));
            let s = model.efficiency(&syrk_op(size, size));
            let y = model.efficiency(&symm_op(size, size));
            assert!(g > s, "size {size}: gemm {g} vs syrk {s}");
            assert!(g > y, "size {size}: gemm {g} vs symm {y}");
        }
    }

    #[test]
    fn gap_is_small_on_large_squares_but_large_for_small_symmetric_orders() {
        let model = AnalyticEfficiencyModel::default();
        // Figure 1: at size 3000 the three kernels are within ~15% of each other.
        let g = model.efficiency(&gemm_op(3000, 3000, 3000));
        let s = model.efficiency(&syrk_op(3000, 3000));
        let y = model.efficiency(&symm_op(3000, 3000));
        assert!(s / g > 0.82, "syrk/gemm ratio at 3000: {}", s / g);
        assert!(y / g > 0.82, "symm/gemm ratio at 3000: {}", y / g);
        // Figure 11 regime: for a small symmetric order the symmetric kernels
        // lose a large fraction of GEMM's efficiency.
        let g_small = model.efficiency(&gemm_op(80, 80, 800));
        let s_small = model.efficiency(&syrk_op(80, 800));
        assert!(s_small / g_small < 0.75, "ratio {}", s_small / g_small);
        let g_small2 = model.efficiency(&gemm_op(80, 800, 80));
        let y_small = model.efficiency(&symm_op(80, 800));
        assert!(y_small / g_small2 < 0.80, "ratio {}", y_small / g_small2);
    }

    fn trmm_op(m: usize, n: usize) -> KernelOp {
        KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m,
            n,
        }
    }

    fn trsm_op(m: usize, n: usize) -> KernelOp {
        KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m,
            n,
        }
    }

    #[test]
    fn gemm_dominates_the_triangular_kernels() {
        let model = AnalyticEfficiencyModel::default();
        for size in [100, 300, 600, 1000, 2000] {
            let g = model.efficiency(&gemm_op(size, size, size));
            let tm = model.efficiency(&trmm_op(size, size));
            let ts = model.efficiency(&trsm_op(size, size));
            assert!(g > tm, "size {size}: gemm {g} vs trmm {tm}");
            assert!(tm > ts, "size {size}: trmm {tm} vs trsm {ts}");
        }
    }

    #[test]
    fn small_triangular_orders_defeat_the_halved_flop_count() {
        // The anomaly mechanism of the triangular family: at small orders the
        // structured kernels' FLOP *rate* is less than half of GEMM's, so
        // performing 2x the FLOPs through GEMM is predicted faster.
        let model = AnalyticEfficiencyModel::default();
        let m = 72;
        let n = 700;
        let t = |flops: f64, eff: f64| flops / eff;
        let via_trmm = t((m * m * n) as f64, model.efficiency(&trmm_op(m, n)));
        let via_gemm = t((2 * m * m * n) as f64, model.efficiency(&gemm_op(m, n, m)));
        assert!(
            via_gemm < via_trmm,
            "small-order GEMM should beat TRMM: {via_gemm} vs {via_trmm}"
        );
        // At large orders the structured kernel wins, as it should.
        let m = 2000;
        let via_trmm = t((m * m * n) as f64, model.efficiency(&trmm_op(m, n)));
        let via_gemm = t((2 * m * m * n) as f64, model.efficiency(&gemm_op(m, n, m)));
        assert!(via_trmm < via_gemm);
    }

    fn potrf_op(n: usize) -> KernelOp {
        KernelOp::Potrf {
            uplo: Uplo::Lower,
            n,
        }
    }

    #[test]
    fn potrf_trails_every_multiplication_kernel() {
        let model = AnalyticEfficiencyModel::default();
        for size in [100, 300, 600, 1000, 2000] {
            let g = model.efficiency(&gemm_op(size, size, size));
            let ts = model.efficiency(&trsm_op(size, size));
            let p = model.efficiency(&potrf_op(size));
            assert!(g > p, "size {size}: gemm {g} vs potrf {p}");
            assert!(ts > p, "size {size}: trsm {ts} vs potrf {p}");
            assert!(p > 0.0 && p <= 1.0);
        }
        // The surface still ramps with size.
        assert!(model.efficiency(&potrf_op(2000)) > model.efficiency(&potrf_op(100)));
    }

    #[test]
    fn small_spd_solves_can_defeat_the_cholesky_flop_savings() {
        // The anomaly mechanism of the SPD family, mirroring the triangular
        // one: at small orders the factor-and-solve pipeline's FLOP rate is
        // so much lower than GEMM's that orderings which shrink the solve's
        // right-hand-side count (fewer FLOPs) are not the fastest.
        let model = AnalyticEfficiencyModel::default();
        let n = 64;
        let wide = 700;
        let t = |flops: f64, eff: f64| flops / eff;
        // Narrow solve (few right-hand sides): FLOP-cheap but rate-poor.
        let narrow_rhs = 8;
        let solve_narrow = t(
            (2 * n * n * narrow_rhs) as f64,
            model.efficiency(&trsm_op(n, narrow_rhs)),
        );
        // Wide solve: more FLOPs, but the kernel runs much closer to its
        // asymptotic rate.
        let solve_wide = t(
            (2 * n * n * wide) as f64,
            model.efficiency(&trsm_op(n, wide)),
        );
        let per_flop_narrow = solve_narrow / (2 * n * n * narrow_rhs) as f64;
        let per_flop_wide = solve_wide / (2 * n * n * wide) as f64;
        assert!(
            per_flop_narrow > per_flop_wide * 1.1,
            "narrow solves must be rate-poor: {per_flop_narrow} vs {per_flop_wide}"
        );
    }

    #[test]
    fn variant_switch_creates_abrupt_change() {
        let model = AnalyticEfficiencyModel::default();
        let below = model.efficiency(&gemm_op(500, 500, 95));
        let above = model.efficiency(&gemm_op(500, 500, 96));
        // Crossing k = 96 removes the 0.86 penalty: a visible jump.
        assert!(
            above / below > 1.05,
            "expected a jump, got {below} -> {above}"
        );
        let smooth = AnalyticEfficiencyModel::smooth();
        let below_s = smooth.efficiency(&gemm_op(500, 500, 95));
        let above_s = smooth.efficiency(&gemm_op(500, 500, 96));
        assert!((above_s / below_s) < 1.02, "smooth model must not jump");
    }

    #[test]
    fn skinny_shapes_are_less_efficient_than_square_of_equal_flops() {
        let model = AnalyticEfficiencyModel::default();
        let square = model.efficiency(&gemm_op(400, 400, 400));
        let skinny = model.efficiency(&gemm_op(6400, 400, 25));
        assert!(square > skinny);
    }

    #[test]
    fn general_factorisations_trail_gemm_and_ramp_with_size() {
        let model = AnalyticEfficiencyModel::default();
        for size in [100, 300, 600, 1000, 2000] {
            let g = model.efficiency(&gemm_op(size, size, size));
            let lu = model.efficiency(&KernelOp::Getrf { n: size });
            let qr = model.efficiency(&KernelOp::Qr { m: size, n: size });
            let mq = model.efficiency(&KernelOp::Ormqr {
                m: size,
                n: size,
                k: size,
            });
            assert!(g > lu, "size {size}: gemm {g} vs getrf {lu}");
            assert!(g > qr, "size {size}: gemm {g} vs qr {qr}");
            assert!(g > mq, "size {size}: gemm {g} vs ormqr {mq}");
            // Reflector application is GEMM-rich; the factorisations are not.
            assert!(mq > lu, "size {size}: ormqr {mq} vs getrf {lu}");
            assert!(mq > qr, "size {size}: ormqr {mq} vs qr {qr}");
        }
        // Both surfaces still ramp with size.
        assert!(
            model.efficiency(&KernelOp::Getrf { n: 2000 })
                > model.efficiency(&KernelOp::Getrf { n: 100 })
        );
        assert!(
            model.efficiency(&KernelOp::Qr { m: 2000, n: 2000 })
                > model.efficiency(&KernelOp::Qr { m: 100, n: 100 })
        );
        // The zero-FLOP movement ops report nominal efficiency.
        assert_eq!(
            model.efficiency(&KernelOp::FactorTri {
                uplo: Uplo::Lower,
                n: 64
            }),
            1.0
        );
        assert_eq!(
            model.efficiency(&KernelOp::PivotApply {
                side: Side::Left,
                m: 64,
                n: 8
            }),
            1.0
        );
    }

    #[test]
    fn copy_triangle_has_nominal_efficiency() {
        let model = AnalyticEfficiencyModel::default();
        assert_eq!(
            model.efficiency(&KernelOp::CopyTriangle {
                uplo: Uplo::Lower,
                n: 100
            }),
            1.0
        );
    }

    #[test]
    fn symm_right_side_uses_the_symmetric_dimension() {
        let model = AnalyticEfficiencyModel::default();
        let left = model.efficiency(&KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m: 800,
            n: 50,
        });
        let right = model.efficiency(&KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Lower,
            m: 50,
            n: 800,
        });
        // Both have an 800-order symmetric operand and a 50-wide other
        // operand, so the model treats them identically.
        assert!((left - right).abs() < 1e-12);
    }

    #[test]
    fn triangular_right_sides_mirror_the_left_surfaces() {
        // B·L (m x n, triangle of order n) must price like L'·B' with the
        // triangle of the same order and the same rectangular width.
        let model = AnalyticEfficiencyModel::default();
        let left = model.efficiency(&KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 800,
            n: 50,
        });
        let right = model.efficiency(&KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 50,
            n: 800,
        });
        assert!((left - right).abs() < 1e-12);
        let left_s = model.efficiency(&KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 640,
            n: 70,
        });
        let right_s = model.efficiency(&KernelOp::Trsm {
            side: Side::Right,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 70,
            n: 640,
        });
        assert!((left_s - right_s).abs() < 1e-12);
    }

    #[test]
    fn aatb_small_d0_regime_favours_gemm_algorithms_despite_more_flops() {
        // The mechanism behind the paper's Figure 11 centre/right columns:
        // with d0 = 80, algorithm 4 (gemm+gemm, 2·d0²(d1+d2) FLOPs) beats
        // algorithm 1 (syrk+symm, ~half the FLOPs on the first product) on
        // predicted time.
        let model = AnalyticEfficiencyModel::default();
        let (d0, d1, d2) = (80usize, 514usize, 768usize);
        let t = |flops: f64, eff: f64| flops / eff;
        // Algorithm 1: syrk (d0, k=d1) + symm (d0, n=d2).
        let alg1 = t(
            ((d0 + 1) * d0 * d1) as f64,
            model.efficiency(&syrk_op(d0, d1)),
        ) + t(
            (2 * d0 * d0 * d2) as f64,
            model.efficiency(&symm_op(d0, d2)),
        );
        // Algorithm 4: gemm (d0,d0,d1) + gemm (d0,d2,d0).
        let alg4 = t(
            (2 * d0 * d0 * d1) as f64,
            model.efficiency(&gemm_op(d0, d0, d1)),
        ) + t(
            (2 * d0 * d2 * d0) as f64,
            model.efficiency(&gemm_op(d0, d2, d0)),
        );
        assert!(
            alg4 < alg1 * 0.9,
            "alg4 should be >10% faster: alg1 {alg1}, alg4 {alg4}"
        );
    }

    #[test]
    fn reference_surface_crosses_the_native_surface_at_small_sizes() {
        // The backend-selection premise: the scalar reference loops win on
        // tiny operands (no packing/dispatch overhead) and lose decisively on
        // large ones (no cache blocking). Time ∝ flops/eff at equal FLOPs, so
        // comparing efficiencies compares times.
        let native = AnalyticEfficiencyModel::default();
        let reference = ReferenceEfficiencyModel::default();
        assert!(
            reference.efficiency(&gemm_op(12, 12, 12)) > native.efficiency(&gemm_op(12, 12, 12))
        );
        assert!(
            native.efficiency(&gemm_op(400, 400, 400))
                > 4.0 * reference.efficiency(&gemm_op(400, 400, 400))
        );
        // The delegated family is priced exactly like the native backend.
        let potrf = KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 90,
        };
        assert_eq!(reference.efficiency(&potrf), native.efficiency(&potrf));
        // Bounded everywhere.
        for order in [1usize, 8, 64, 512, 4096] {
            let e = reference.efficiency(&gemm_op(order, order, order));
            assert!(e > 0.0 && e <= 1.0);
        }
    }
}
