//! The [`Executor`] abstraction: something that can attach execution times to
//! an algorithm, either by running it (measured) or by evaluating a
//! performance model (simulated).

use crate::backend::NATIVE_BACKEND_NAME;
use crate::machine::MachineModel;
use crate::reuse::{FactorStore, ReuseReport};
use lamb_expr::Algorithm;
use std::collections::HashMap;

/// The time attributed to one kernel call of an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct CallTiming {
    /// Index of the call within the algorithm.
    pub index: usize,
    /// The call's human-readable label.
    pub label: String,
    /// FLOP count of the call (Section 3.1 models).
    pub flops: u64,
    /// Execution time in seconds.
    pub seconds: f64,
}

/// The result of timing a whole algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmTiming {
    /// Name of the algorithm that was timed.
    pub algorithm_name: String,
    /// Total execution time in seconds (median over repetitions for measured
    /// executors).
    pub seconds: f64,
    /// Per-call breakdown.
    pub per_call: Vec<CallTiming>,
    /// Total FLOP count of the algorithm.
    pub flops: u64,
}

impl AlgorithmTiming {
    /// Whole-algorithm efficiency: FLOP rate over machine peak (the solid
    /// "Total" curves of the paper's Figures 8 and 11).
    #[must_use]
    pub fn efficiency(&self, machine: &MachineModel) -> f64 {
        machine.efficiency(self.flops, self.seconds)
    }

    /// Efficiency of an individual call (the per-kernel curves of Figures 8
    /// and 11). Calls with zero FLOPs (the triangle copy) report 0.
    #[must_use]
    pub fn call_efficiency(&self, index: usize, machine: &MachineModel) -> f64 {
        self.per_call
            .get(index)
            .map_or(0.0, |c| machine.efficiency(c.flops, c.seconds))
    }

    /// Sum of the per-call times. For measured executors this can differ
    /// slightly from `seconds` (which is the median of whole-algorithm
    /// repetitions); for simulated executors they coincide.
    #[must_use]
    pub fn sum_of_calls(&self) -> f64 {
        self.per_call.iter().map(|c| c.seconds).sum()
    }
}

/// Attaches execution times to algorithms.
///
/// Implementations may panic if handed an algorithm that is not well-formed
/// (see [`Algorithm::is_well_formed`]); all algorithms produced by the
/// enumerators in `lamb-expr` are well-formed.
pub trait Executor: Send {
    /// Short descriptive name (`"measured"`, `"simulated"`, ...).
    fn name(&self) -> String;

    /// The machine model times are interpreted against (used to convert
    /// between time and efficiency).
    fn machine(&self) -> &MachineModel;

    /// Execute (or simulate) the algorithm as a whole — one call after the
    /// other, starting from a cold cache, with inter-call cache effects
    /// included — and return its timing.
    fn execute_algorithm(&mut self, alg: &Algorithm) -> AlgorithmTiming;

    /// Time a single call of the algorithm in isolation with a cold cache
    /// (the paper's Experiment 3 benchmarks).
    fn time_isolated_call(&mut self, alg: &Algorithm, call_index: usize) -> f64;

    /// Names of the kernel-implementation backends this executor can
    /// attribute distinct times to. The first name is the default backend;
    /// executors with a single implementation report just `["native"]`.
    fn backend_names(&self) -> Vec<String> {
        vec![NATIVE_BACKEND_NAME.to_string()]
    }

    /// Time a single call in isolation under the named backend. Executors
    /// that cannot distinguish backends (and any unknown name) fall back to
    /// the default backend's time, so callers can probe every name from
    /// [`Executor::backend_names`] uniformly.
    fn time_isolated_call_on(&mut self, alg: &Algorithm, call_index: usize, backend: &str) -> f64 {
        let _ = backend;
        self.time_isolated_call(alg, call_index)
    }

    /// Install a per-call backend assignment (call index → backend name) that
    /// subsequent whole-algorithm executions should honour — how a plan's
    /// `MinPredictedTime` backend choices reach the kernels. Executors with a
    /// single implementation ignore it. Pass an empty map to clear.
    fn set_backend_assignment(&mut self, assignment: &HashMap<usize, String>) {
        let _ = assignment;
    }

    /// Execute the algorithm against a store of already-computed factors:
    /// calls whose result is resident in `store` may be skipped (their value
    /// injected from the store), and factors this execution computes may be
    /// deposited for later executions. The default implementation ignores the
    /// store and executes everything — executors that honour reuse
    /// ([`crate::MeasuredExecutor`], [`crate::SimulatedExecutor`]) override
    /// it.
    fn execute_algorithm_reusing(
        &mut self,
        alg: &Algorithm,
        _store: &dyn FactorStore,
    ) -> (AlgorithmTiming, ReuseReport) {
        (self.execute_algorithm(alg), ReuseReport::all_executed(alg))
    }

    /// Predict the algorithm's time as the sum of its isolated-call
    /// benchmarks — the predictor evaluated in the paper's Experiment 3.
    fn predict_from_isolated_calls(&mut self, alg: &Algorithm) -> AlgorithmTiming {
        let per_call: Vec<CallTiming> = alg
            .calls
            .iter()
            .enumerate()
            .map(|(i, call)| CallTiming {
                index: i,
                label: call.label.clone(),
                flops: call.flops(),
                seconds: self.time_isolated_call(alg, i),
            })
            .collect();
        AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: per_call.iter().map(|c| c.seconds).sum(),
            per_call,
            flops: alg.flops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_timing() -> AlgorithmTiming {
        AlgorithmTiming {
            algorithm_name: "toy".into(),
            seconds: 2.0,
            per_call: vec![
                CallTiming {
                    index: 0,
                    label: "first".into(),
                    flops: 100_000_000_000,
                    seconds: 1.0,
                },
                CallTiming {
                    index: 1,
                    label: "second".into(),
                    flops: 50_000_000_000,
                    seconds: 0.9,
                },
            ],
            flops: 150_000_000_000,
        }
    }

    #[test]
    fn efficiency_uses_total_time_and_flops() {
        let m = MachineModel::paper_xeon_silver_4210();
        let t = toy_timing();
        let expected = (150.0e9 / 2.0) / m.peak_flops;
        assert!((t.efficiency(&m) - expected).abs() < 1e-12);
    }

    #[test]
    fn call_efficiency_indexes_safely() {
        let m = MachineModel::paper_xeon_silver_4210();
        let t = toy_timing();
        assert!(t.call_efficiency(0, &m) > 0.0);
        assert_eq!(t.call_efficiency(5, &m), 0.0);
    }

    #[test]
    fn sum_of_calls_adds_per_call_times() {
        let t = toy_timing();
        assert!((t.sum_of_calls() - 1.9).abs() < 1e-12);
    }
}
