//! A minimal, dependency-free JSON reader/writer.
//!
//! The workspace is built offline against vendored stubs, so `serde` is not
//! available; the calibration store ([`crate::store`]) instead hand-rolls its
//! format on top of this module. The subset is deliberately small but
//! complete for the store's needs:
//!
//! * values: `null`, booleans, finite numbers, strings, arrays, objects;
//! * objects preserve insertion order, so serialisation is deterministic;
//! * numbers are written with Rust's shortest round-trip formatting
//!   (`f64` → text → `f64` is bit-identical for finite values), which is what
//!   lets a stored calibration table reproduce in-memory predictions exactly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has one number type; integers survive the
    /// round-trip exactly up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when serialising.
    Obj(Vec<(String, Json)>),
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serialise with two-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&format_number(*x)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Field `key` of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Format a finite number; integers (up to 2⁵³) print without a decimal
/// point, everything else uses Rust's shortest round-trip representation.
fn format_number(x: f64) -> String {
    assert!(x.is_finite(), "JSON cannot represent NaN or infinity");
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the store
                            // format; reject them rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        let x: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number `{text}`")))?;
        if !x.is_finite() {
            return Err(self.error("number overflows f64"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_round_trip() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("quoted \"name\"\n".into())),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "values".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(0.1), Json::Num(-2.5e-9)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn finite_floats_round_trip_bit_identically() {
        for &x in &[
            0.0,
            1.0,
            -1.0,
            1.0 / 3.0,
            6.02e23,
            1.25e-13,
            f64::MAX,
            f64::MIN_POSITIVE,
            352.0e9,
            0.015625,
        ] {
            let text = Json::Num(x).pretty();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(1024.0).pretty().trim(), "1024");
        assert_eq!(Json::Num(-3.0).pretty().trim(), "-3");
        assert_eq!(Json::Num(352.0e9).pretty().trim(), "352000000000");
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x", "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        let inner = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(inner.as_array().unwrap().len(), 3);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn parse_errors_carry_positions() {
        for bad in ["{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "", "[1,]x"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad}: {err}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let original = Json::Str("tab\t newline\n quote\" back\\ é ∑ \u{1}".into());
        let text = original.pretty();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Standard escape forms parse too.
        let parsed = Json::parse(r#""aA\/\b\f""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aA/\u{8}\u{c}"));
    }

    #[test]
    #[should_panic(expected = "NaN or infinity")]
    fn non_finite_numbers_are_rejected_at_write_time() {
        let _ = Json::Num(f64::NAN).pretty();
    }
}
