//! # lamb-perfmodel
//!
//! Machine and kernel performance models plus the two executors that attach
//! execution times to the symbolic algorithms of `lamb-expr`:
//!
//! * [`MeasuredExecutor`] runs the real `lamb-kernels` BLAS-3 kernels and
//!   times them with the paper's protocol (median of N repetitions, cache
//!   flushed before each repetition).
//! * [`SimulatedExecutor`] evaluates a deterministic analytic performance
//!   model calibrated to reproduce the *qualitative* behaviour of the paper's
//!   Xeon + MKL testbed: shape-dependent efficiency ramps, a GEMM > SYMM >
//!   SYRK efficiency ordering, abrupt internal-variant switches, inter-kernel
//!   cache effects, and bounded measurement noise. This is the substitution
//!   (documented in `DESIGN.md`) that makes the paper-scale experiments —
//!   tens of thousands of instances, hundreds of thousands of isolated-call
//!   benchmarks — feasible and reproducible on any machine.
//!
//! Both implement the [`Executor`] trait, so every experiment driver in
//! `lamb-experiments` runs unchanged on either.
//!
//! Calibration data — [`MachineModel`], [`SquareProfile`] curves and the
//! [`CallTimeTable`] of isolated-call benchmark times — persists across runs
//! through the [`store`] module's versioned JSON [`CalibrationStore`]
//! (serialised without `serde` via the tiny [`json`] module), so a machine is
//! calibrated once and every later planning run starts warm.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod autotune;
pub mod backend;
pub mod calibrate;
pub mod efficiency;
pub mod executor;
pub mod json;
pub mod machine;
pub mod measured;
pub mod profile;
pub mod reuse;
pub mod simulate;
pub mod store;

pub use autotune::{autotune_measured, coordinate_descent, measured_gemm_gflops, TuneOutcome};
pub use backend::{
    all_backends, backend_by_name, Backend, NativeBackend, ReferenceBackend, NATIVE_BACKEND_NAME,
    REFERENCE_BACKEND_NAME,
};
pub use calibrate::{
    estimate_peak_flops, measure_square_profiles, single_call_algorithm, SQUARE_SWEEP_KERNELS,
};
pub use efficiency::{AnalyticEfficiencyModel, EfficiencyModel, ReferenceEfficiencyModel};
pub use executor::{AlgorithmTiming, CallTiming, Executor};
pub use machine::MachineModel;
pub use measured::MeasuredExecutor;
pub use profile::{CallTimeTable, SquareProfile};
pub use reuse::{FactorStore, ReuseReport, SimpleFactorStore};
pub use simulate::{SimulatedExecutor, SimulatorConfig};
pub use store::{
    kernel_coverage_key, BackendCalibration, CalibrationStore, StalenessWarning, StoreError,
    StoreMeta, TunedConfig, EXPECTED_KERNELS, STORE_FORMAT_VERSION, STORE_MIN_SUPPORTED_VERSION,
};
