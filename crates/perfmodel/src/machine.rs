//! Machine models: the handful of hardware parameters the time models need.

/// A coarse description of the machine executing (or simulated to execute)
/// the kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: String,
    /// Theoretical double-precision peak of the whole machine, in FLOP/s.
    pub peak_flops: f64,
    /// Number of physical cores used.
    pub cores: usize,
    /// Last-level cache capacity in bytes (shared).
    pub llc_bytes: u64,
    /// Sustainable memory bandwidth in bytes/s (used for the copy kernel and
    /// the inter-kernel cache model).
    pub mem_bandwidth: f64,
}

impl MachineModel {
    /// The machine used in the paper's experiments: a 10-core Intel Xeon
    /// Silver 4210 (Cascade Lake, one AVX-512 FMA unit per core) with 40 GB of
    /// RAM. Peak ≈ 10 cores × 2.2 GHz × 16 DP FLOP/cycle ≈ 352 GFLOP/s;
    /// 13.75 MiB LLC; ~100 GB/s of practical memory bandwidth.
    #[must_use]
    pub fn paper_xeon_silver_4210() -> Self {
        MachineModel {
            name: "Intel Xeon Silver 4210 (10 cores, paper setup)".into(),
            peak_flops: 352.0e9,
            cores: 10,
            llc_bytes: 14 * 1024 * 1024,
            mem_bandwidth: 100.0e9,
        }
    }

    /// A small generic model for the machine running the tests: the absolute
    /// values only matter for converting between time and efficiency, so the
    /// defaults are deliberately conservative.
    #[must_use]
    pub fn generic_laptop() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, usize::from);
        MachineModel {
            name: format!("generic machine ({cores} cores)"),
            // 8 DP FLOP/cycle/core at 3 GHz is a conservative FMA+AVX2 estimate.
            peak_flops: cores as f64 * 3.0e9 * 8.0,
            cores,
            llc_bytes: 16 * 1024 * 1024,
            mem_bandwidth: 40.0e9,
        }
    }

    /// Build a model with an explicitly measured/estimated peak (see
    /// [`crate::calibrate::estimate_peak_flops`]).
    #[must_use]
    pub fn with_peak(mut self, peak_flops: f64) -> Self {
        self.peak_flops = peak_flops;
        self
    }

    /// Convert a FLOP count and a time into an efficiency in `[0, 1]` — the
    /// paper's definition: measured performance over theoretical peak.
    #[must_use]
    pub fn efficiency(&self, flops: u64, seconds: f64) -> f64 {
        if seconds <= 0.0 || self.peak_flops <= 0.0 {
            return 0.0;
        }
        (flops as f64 / seconds) / self.peak_flops
    }

    /// Time that a computation of `flops` FLOPs takes at a given efficiency.
    #[must_use]
    pub fn time_at_efficiency(&self, flops: u64, efficiency: f64) -> f64 {
        if efficiency <= 0.0 {
            return f64::INFINITY;
        }
        flops as f64 / (self.peak_flops * efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_has_expected_scale() {
        let m = MachineModel::paper_xeon_silver_4210();
        assert_eq!(m.cores, 10);
        assert!(m.peak_flops > 100.0e9 && m.peak_flops < 1.0e12);
        assert!(m.llc_bytes > 10 * 1024 * 1024);
    }

    #[test]
    fn efficiency_and_time_round_trip() {
        let m = MachineModel::paper_xeon_silver_4210();
        let flops = 2u64 * 1000 * 1000 * 1000;
        let t = m.time_at_efficiency(flops, 0.8);
        let e = m.efficiency(flops, t);
        assert!((e - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let m = MachineModel::generic_laptop();
        assert_eq!(m.efficiency(1000, 0.0), 0.0);
        assert!(m.time_at_efficiency(1000, 0.0).is_infinite());
    }

    #[test]
    fn with_peak_overrides_only_the_peak() {
        let m = MachineModel::generic_laptop().with_peak(123.0e9);
        assert_eq!(m.peak_flops, 123.0e9);
        assert!(m.cores >= 1);
    }
}
