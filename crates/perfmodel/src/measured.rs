//! The measured executor: turns symbolic kernel-call sequences into actual
//! invocations of the `lamb-kernels` BLAS-3 kernels and times them following
//! the paper's protocol (median of N repetitions, cache flushed before each
//! repetition).

use crate::backend::{all_backends, backend_by_name, Backend, NativeBackend};
use crate::executor::{AlgorithmTiming, CallTiming, Executor};
use crate::machine::MachineModel;
use crate::reuse::{FactorStore, ReuseReport};
use lamb_expr::cse::cacheable_identities;
use lamb_expr::{Algorithm, KernelCall, KernelOp, OperandId, OperandInfo, OperandRole};
use lamb_kernels::{BlockConfig, CacheFlusher};
use lamb_matrix::ops::{is_symmetric, is_triangular};
use lamb_matrix::random::{random_seeded, random_spd, random_triangular};
use lamb_matrix::{Matrix, Structure};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Executes algorithms with the real kernels and wall-clock timing.
#[derive(Debug)]
pub struct MeasuredExecutor {
    machine: MachineModel,
    cfg: BlockConfig,
    reps: usize,
    flusher: Option<CacheFlusher>,
    seed: u64,
    backend: Arc<dyn Backend>,
    call_backends: HashMap<usize, Arc<dyn Backend>>,
}

impl MeasuredExecutor {
    /// Full-protocol executor: `reps` repetitions per measurement and a cache
    /// flush of `flush_bytes` bytes before each repetition (the paper uses 10
    /// repetitions).
    #[must_use]
    pub fn new(machine: MachineModel, cfg: BlockConfig, reps: usize, flush_bytes: usize) -> Self {
        MeasuredExecutor {
            machine,
            cfg,
            reps: reps.max(1),
            flusher: if flush_bytes > 0 {
                Some(CacheFlusher::new(flush_bytes))
            } else {
                None
            },
            seed: 42,
            backend: Arc::new(NativeBackend),
            call_backends: HashMap::new(),
        }
    }

    /// A cheap configuration for tests and quick explorations: three
    /// repetitions, a 16 MiB flush buffer, generic machine model.
    #[must_use]
    pub fn quick() -> Self {
        MeasuredExecutor::new(
            MachineModel::generic_laptop(),
            BlockConfig::default(),
            3,
            16 * 1024 * 1024,
        )
    }

    /// Override the seed used to fill input operands.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run every kernel call through the given backend (the default is the
    /// blocked native backend) — what a `--backend <name>` pin constructs.
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// The backend calls run through when no per-call override applies.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Install per-call backend overrides, keyed by call index within the
    /// next executed algorithm — how a plan's per-call backend assignment
    /// reaches the kernels. Calls without an entry use the default backend.
    pub fn set_call_backends(&mut self, assignment: HashMap<usize, Arc<dyn Backend>>) {
        self.call_backends = assignment;
    }

    /// Number of repetitions per measurement.
    #[must_use]
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// Materialise one input operand. Triangular inputs are genuinely
    /// triangular (zeros outside the stored triangle) and diagonally
    /// dominant, so a TRMM that reads only the triangle, a GEMM that reads
    /// the whole matrix and a TRSM that inverts the triangle all see the
    /// same, well-conditioned mathematical operand. SPD inputs are exactly
    /// symmetric and diagonally dominant with a positive diagonal, so a SYMM
    /// that reads one triangle, a GEMM that reads everything and a POTRF
    /// that factors the matrix all agree — and the factorisation is well
    /// conditioned.
    fn input_matrix(&self, info: &OperandInfo) -> Matrix {
        let seed = self.seed ^ (info.id.index() as u64);
        match info.structure {
            Structure::Triangular(uplo) => random_triangular(info.rows, uplo, seed),
            Structure::Spd => random_spd(info.rows, seed),
            Structure::General => random_seeded(info.rows, info.cols, seed),
        }
    }

    /// Allocate every operand of the algorithm: inputs are filled with
    /// reproducible random values, intermediates and the output with zeros.
    fn allocate_operands(&self, alg: &Algorithm) -> HashMap<OperandId, Matrix> {
        alg.operands
            .iter()
            .map(|info| {
                let m = match info.role {
                    OperandRole::Input => self.input_matrix(info),
                    _ => Matrix::zeros(info.rows, info.cols),
                };
                (info.id, m)
            })
            .collect()
    }

    /// Execute one call against the operand map.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm references operands it does not declare or if
    /// kernel shape checks fail — both indicate a malformed algorithm.
    fn run_call(&self, index: usize, call: &KernelCall, operands: &mut HashMap<OperandId, Matrix>) {
        let mut out = operands
            .remove(&call.output)
            .expect("output operand must be allocated");
        // The in-place triangle copy reads only the output operand, which is
        // already removed from the map — give the backend no inputs for it.
        let inputs: Vec<&Matrix> = if matches!(call.op, KernelOp::CopyTriangle { .. }) {
            Vec::new()
        } else {
            call.inputs.iter().map(|id| &operands[id]).collect()
        };
        if let KernelOp::Trmm { uplo, .. } | KernelOp::Trsm { uplo, .. } = call.op {
            debug_assert!(
                is_triangular(inputs[0], uplo).unwrap_or(false),
                "triangular operand of {} is not {uplo:?}-triangular",
                call.op.mnemonic()
            );
        }
        if let KernelOp::Potrf { .. } = call.op {
            // Full SPD validation is O(n³); assert the cheap symmetric
            // half here — POTRF itself reports indefiniteness exactly.
            debug_assert!(
                is_symmetric(inputs[0], 0.0).unwrap_or(false),
                "SPD operand of potrf is not exactly symmetric"
            );
        }
        let backend = self.call_backends.get(&index).unwrap_or(&self.backend);
        backend
            .run_into(&call.op, &inputs, &mut out, &self.cfg)
            .expect("kernel shapes consistent (TRSM nonsingular, POTRF positive definite)");
        operands.insert(call.output, out);
    }

    /// Execute the algorithm once (untimed) with the real kernels and return
    /// the final result matrix. Inputs are filled from the executor's seed,
    /// so two algorithms of the same expression see identical operands —
    /// this is how the numerical-equivalence tests check that every
    /// enumerated algorithm computes the same mathematical object.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm is malformed (no declared output operand or
    /// inconsistent kernel shapes).
    #[must_use]
    pub fn compute_result(&self, alg: &Algorithm) -> Matrix {
        let mut operands = self.allocate_operands(alg);
        for (i, call) in alg.calls.iter().enumerate() {
            self.run_call(i, call, &mut operands);
        }
        let out_id = alg.output().expect("algorithm declares an output").id;
        operands.remove(&out_id).expect("output operand allocated")
    }

    /// Execute the algorithm once (untimed) against a factor store — the
    /// numerics-checking counterpart of
    /// [`Executor::execute_algorithm_reusing`]: resident cacheable results
    /// are injected instead of recomputed, newly computed cacheable results
    /// are deposited, and the final result matrix is returned together with
    /// the reuse accounting.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm is malformed (no declared output operand or
    /// inconsistent kernel shapes).
    #[must_use]
    pub fn compute_result_reusing(
        &self,
        alg: &Algorithm,
        store: &dyn FactorStore,
    ) -> (Matrix, ReuseReport) {
        let cacheable: HashMap<usize, String> = cacheable_identities(alg)
            .into_iter()
            .map(|(i, _, identity)| (i, identity))
            .collect();
        let mut operands = self.allocate_operands(alg);
        let mut report = ReuseReport::default();
        for (i, call) in alg.calls.iter().enumerate() {
            if let Some(resident) = cacheable.get(&i).and_then(|key| store.lookup(key)) {
                operands.insert(call.output, (*resident).clone());
                report.record_reused(call.flops());
                continue;
            }
            self.run_call(i, call, &mut operands);
            report.record_executed(call.op.mnemonic());
            if let Some(key) = cacheable.get(&i) {
                store.store(key, Arc::new(operands[&call.output].clone()));
            }
        }
        let out_id = alg.output().expect("algorithm declares an output").id;
        let result = operands.remove(&out_id).expect("output operand allocated");
        (result, report)
    }

    fn median(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let n = samples.len();
        if n == 0 {
            0.0
        } else if n % 2 == 1 {
            samples[n / 2]
        } else {
            0.5 * (samples[n / 2 - 1] + samples[n / 2])
        }
    }
}

impl Executor for MeasuredExecutor {
    fn name(&self) -> String {
        "measured".into()
    }

    fn machine(&self) -> &MachineModel {
        &self.machine
    }

    fn execute_algorithm(&mut self, alg: &Algorithm) -> AlgorithmTiming {
        let mut operands = self.allocate_operands(alg);
        let n_calls = alg.calls.len();
        let mut total_samples = Vec::with_capacity(self.reps);
        let mut call_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(self.reps); n_calls];
        for _ in 0..self.reps {
            if let Some(flusher) = &mut self.flusher {
                flusher.flush();
            }
            let mut total = 0.0;
            for (i, call) in alg.calls.iter().enumerate() {
                let start = Instant::now();
                self.run_call(i, call, &mut operands);
                let dt = start.elapsed().as_secs_f64();
                call_samples[i].push(dt);
                total += dt;
            }
            total_samples.push(total);
        }
        let per_call = alg
            .calls
            .iter()
            .enumerate()
            .map(|(i, call)| CallTiming {
                index: i,
                label: call.label.clone(),
                flops: call.flops(),
                seconds: Self::median(call_samples[i].clone()),
            })
            .collect();
        AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: Self::median(total_samples),
            per_call,
            flops: alg.flops(),
        }
    }

    /// Serving-style execution against a factor store: a *single* timed pass
    /// (no repetitions, no cache flush — a warm cache is the point of reuse).
    /// Calls whose [cacheable](lamb_expr::is_cacheable_op) result is resident
    /// are skipped and their value injected from the store at zero attributed
    /// cost; cacheable results this pass computes are deposited for later
    /// executions. The injected bytes are exactly what the call would have
    /// produced (node identities pin the computation to the seeded leaf
    /// contents), so downstream numerics are unchanged.
    fn execute_algorithm_reusing(
        &mut self,
        alg: &Algorithm,
        store: &dyn FactorStore,
    ) -> (AlgorithmTiming, ReuseReport) {
        let cacheable: HashMap<usize, String> = cacheable_identities(alg)
            .into_iter()
            .map(|(i, _, identity)| (i, identity))
            .collect();
        let mut operands = self.allocate_operands(alg);
        let mut report = ReuseReport::default();
        let mut per_call = Vec::with_capacity(alg.calls.len());
        for (i, call) in alg.calls.iter().enumerate() {
            if let Some(resident) = cacheable.get(&i).and_then(|key| store.lookup(key)) {
                operands.insert(call.output, (*resident).clone());
                report.record_reused(call.flops());
                per_call.push(CallTiming {
                    index: i,
                    label: call.label.clone(),
                    flops: call.flops(),
                    seconds: 0.0,
                });
                continue;
            }
            let start = Instant::now();
            self.run_call(i, call, &mut operands);
            let dt = start.elapsed().as_secs_f64();
            report.record_executed(call.op.mnemonic());
            if let Some(key) = cacheable.get(&i) {
                // Snapshot now: a later in-place copy would mutate the map
                // entry, but the clone is immune (and the identity of the
                // copied operand advances, so it can never alias this key).
                store.store(key, Arc::new(operands[&call.output].clone()));
            }
            per_call.push(CallTiming {
                index: i,
                label: call.label.clone(),
                flops: call.flops(),
                seconds: dt,
            });
        }
        let timing = AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: per_call.iter().map(|c| c.seconds).sum(),
            per_call,
            flops: alg.flops(),
        };
        (timing, report)
    }

    fn time_isolated_call(&mut self, alg: &Algorithm, call_index: usize) -> f64 {
        let call = &alg.calls[call_index];
        // Only the operands touched by this call are needed; their contents do
        // not affect performance (dense operands), so inputs that are
        // intermediates elsewhere are simply random here — except triangular
        // operands, which must be genuinely triangular and nonsingular (a
        // TRSM against a random dense matrix could overflow mid-benchmark).
        let mut operands: HashMap<OperandId, Matrix> = HashMap::new();
        for id in call.inputs.iter().copied().chain([call.output]) {
            let info = alg.operand(id).expect("operand declared");
            operands
                .entry(id)
                .or_insert_with(|| self.input_matrix(info));
        }
        let mut samples = Vec::with_capacity(self.reps);
        for _ in 0..self.reps {
            if let Some(flusher) = &mut self.flusher {
                flusher.flush();
            }
            let start = Instant::now();
            self.run_call(call_index, call, &mut operands);
            samples.push(start.elapsed().as_secs_f64());
        }
        Self::median(samples)
    }

    fn backend_names(&self) -> Vec<String> {
        // Default backend first, then every other registered backend.
        let mut names = vec![self.backend.name().to_string()];
        for b in all_backends() {
            if b.name() != self.backend.name() {
                names.push(b.name().to_string());
            }
        }
        names
    }

    fn time_isolated_call_on(&mut self, alg: &Algorithm, call_index: usize, backend: &str) -> f64 {
        let Some(requested) = backend_by_name(backend) else {
            return self.time_isolated_call(alg, call_index);
        };
        // Swap in the requested backend (and suspend per-call overrides, which
        // would shadow it) for the duration of the measurement.
        let saved_backend = std::mem::replace(&mut self.backend, requested);
        let saved_overrides = std::mem::take(&mut self.call_backends);
        let seconds = self.time_isolated_call(alg, call_index);
        self.backend = saved_backend;
        self.call_backends = saved_overrides;
        seconds
    }

    fn set_backend_assignment(&mut self, assignment: &HashMap<usize, String>) {
        self.call_backends = assignment
            .iter()
            .filter_map(|(&i, name)| backend_by_name(name).map(|b| (i, b)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms};
    use lamb_matrix::ops::max_abs_diff;

    fn tiny_executor() -> MeasuredExecutor {
        MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 2, 0)
    }

    #[test]
    fn all_chain_algorithms_produce_the_same_result_matrix() {
        // Execute each of the six ABCD algorithms with identical inputs and
        // compare the output operands numerically.
        let exec = tiny_executor();
        let algs = enumerate_chain_algorithms(&[30, 25, 20, 15, 10]).unwrap();
        let mut results = Vec::new();
        for alg in &algs {
            let mut operands = exec.allocate_operands(alg);
            for (i, call) in alg.calls.iter().enumerate() {
                exec.run_call(i, call, &mut operands);
            }
            let out_id = alg.output().unwrap().id;
            results.push(operands.remove(&out_id).unwrap());
        }
        for other in &results[1..] {
            assert!(max_abs_diff(&results[0], other).unwrap() < 1e-9);
        }
    }

    #[test]
    fn all_aatb_algorithms_produce_the_same_result_matrix() {
        let exec = tiny_executor();
        let algs = enumerate_aatb_algorithms(28, 17, 22);
        let mut results = Vec::new();
        for alg in &algs {
            let mut operands = exec.allocate_operands(alg);
            for (i, call) in alg.calls.iter().enumerate() {
                exec.run_call(i, call, &mut operands);
            }
            let out_id = alg.output().unwrap().id;
            results.push(operands.remove(&out_id).unwrap());
        }
        for other in &results[1..] {
            assert!(max_abs_diff(&results[0], other).unwrap() < 1e-9);
        }
    }

    #[test]
    fn all_triangular_algorithms_produce_the_same_result_matrix() {
        // Every algorithm of L[lower]*A*B — TRMM-based and GEMM-based, in
        // both merge orders — computes the same mathematical object.
        use lamb_expr::{Expression, TreeExpression};
        let exec = tiny_executor();
        let expr = TreeExpression::parse("L[lower]*A*B").unwrap();
        let algs = expr.algorithms(&[24, 18, 13]).unwrap();
        assert!(algs.iter().any(|a| a.kernel_summary().contains("trmm")));
        let results: Vec<Matrix> = algs.iter().map(|a| exec.compute_result(a)).collect();
        for other in &results[1..] {
            assert!(max_abs_diff(&results[0], other).unwrap() < 1e-9);
        }
    }

    #[test]
    fn trsm_algorithms_solve_consistently_across_orders() {
        // L^-1*A*B: solve-then-multiply equals multiply-then-solve.
        use lamb_expr::{Expression, TreeExpression};
        let exec = tiny_executor();
        let expr = TreeExpression::parse("L[lower]^-1*A*B").unwrap();
        let algs = expr.algorithms(&[20, 15, 11]).unwrap();
        assert!(algs.len() >= 2);
        let results: Vec<Matrix> = algs.iter().map(|a| exec.compute_result(a)).collect();
        for other in &results[1..] {
            assert!(max_abs_diff(&results[0], other).unwrap() < 1e-9);
        }
    }

    #[test]
    fn spd_solve_chains_execute_consistently_across_orders() {
        // S[spd]^-1*B*C: the Cholesky realisation in both merge orders
        // computes the same mathematical object.
        use lamb_expr::{Expression, TreeExpression};
        let exec = tiny_executor();
        let expr = TreeExpression::parse("S[spd]^-1*B*C").unwrap();
        let algs = expr.algorithms(&[18, 12, 7]).unwrap();
        assert!(algs.iter().all(|a| a.kernel_summary().contains("potrf")));
        let results: Vec<Matrix> = algs.iter().map(|a| exec.compute_result(a)).collect();
        for other in &results[1..] {
            assert!(max_abs_diff(&results[0], other).unwrap() < 1e-9);
        }
        // An isolated POTRF call benchmarks without panicking.
        let mut exec = tiny_executor();
        let solve = &expr.algorithms(&[18, 12, 7]).unwrap()[0];
        let potrf_index = solve
            .calls
            .iter()
            .position(|c| c.op.mnemonic() == "potrf")
            .unwrap();
        assert!(exec.time_isolated_call(solve, potrf_index) > 0.0);
    }

    #[test]
    fn timings_have_one_entry_per_call_and_are_positive() {
        let mut exec = tiny_executor();
        let alg = &enumerate_aatb_algorithms(40, 30, 20)[1]; // syrk + copy + gemm
        let timing = exec.execute_algorithm(alg);
        assert_eq!(timing.per_call.len(), 3);
        assert!(timing.seconds > 0.0);
        assert!(timing.per_call.iter().all(|c| c.seconds > 0.0));
        assert_eq!(timing.flops, alg.flops());
    }

    #[test]
    fn isolated_call_timing_is_positive() {
        let mut exec = tiny_executor();
        let alg = &enumerate_chain_algorithms(&[40, 30, 20, 10, 50]).unwrap()[0];
        for i in 0..alg.calls.len() {
            assert!(exec.time_isolated_call(alg, i) > 0.0);
        }
    }

    #[test]
    fn factor_store_reuse_skips_the_potrf_and_preserves_numerics() {
        use crate::reuse::SimpleFactorStore;
        use lamb_expr::{Expression, TreeExpression};
        let expr = TreeExpression::parse("S[spd]^-1*B").unwrap();
        let algs = expr.algorithms(&[24, 7]).unwrap();
        let solve = algs
            .iter()
            .find(|a| a.kernel_summary().contains("potrf"))
            .unwrap();
        let mut exec = tiny_executor();
        let reference = exec.compute_result(solve);
        let store = SimpleFactorStore::new();
        // Cold pass: everything executes, factors are deposited.
        let (_, cold) = exec.execute_algorithm_reusing(solve, &store);
        assert_eq!(cold.reused_calls, 0);
        assert_eq!(cold.executed("potrf"), 1);
        assert!(store.len() >= 2, "potrf + trsm results deposited");
        // Warm pass: the factorisation and both half-solves are injected.
        let (timing, warm) = exec.execute_algorithm_reusing(solve, &store);
        assert_eq!(warm.executed("potrf"), 0);
        assert!(warm.reused_calls >= 1);
        assert!(warm.reused_flops > 0);
        // The injected factors leave the result bit-identical to a fresh
        // execution (identical seeded inputs → identical bytes).
        let (warm_result, warm_report) = exec.compute_result_reusing(solve, &store);
        assert!(warm_report.reused_calls >= 1);
        assert_eq!(warm_report.executed("potrf"), 0);
        assert_eq!(max_abs_diff(&reference, &warm_result).unwrap(), 0.0);
        assert_eq!(timing.per_call.len(), solve.calls.len());
    }

    #[test]
    fn factor_store_reuse_skips_the_getrf_and_preserves_numerics() {
        use crate::reuse::SimpleFactorStore;
        use lamb_expr::{Expression, TreeExpression};
        let expr = TreeExpression::parse("A^-1*B").unwrap();
        let algs = expr.algorithms(&[24, 7]).unwrap();
        let solve = algs
            .iter()
            .find(|a| a.kernel_summary().contains("getrf"))
            .unwrap();
        let mut exec = tiny_executor();
        let reference = exec.compute_result(solve);
        let store = SimpleFactorStore::new();
        // Cold pass: the LU pipeline runs in full and deposits its factor.
        let (_, cold) = exec.execute_algorithm_reusing(solve, &store);
        assert_eq!(cold.reused_calls, 0);
        assert_eq!(cold.executed("getrf"), 1);
        // Warm pass: the packed factor is injected; no re-factorisation.
        let (timing, warm) = exec.execute_algorithm_reusing(solve, &store);
        assert_eq!(warm.executed("getrf"), 0);
        assert!(warm.reused_calls >= 1);
        assert!(warm.reused_flops > 0);
        // The injected factor (pivots included) leaves the result
        // bit-identical to a fresh execution.
        let (warm_result, warm_report) = exec.compute_result_reusing(solve, &store);
        assert!(warm_report.reused_calls >= 1);
        assert_eq!(warm_report.executed("getrf"), 0);
        assert_eq!(max_abs_diff(&reference, &warm_result).unwrap(), 0.0);
        assert_eq!(timing.per_call.len(), solve.calls.len());
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(MeasuredExecutor::median(vec![]), 0.0);
        assert_eq!(MeasuredExecutor::median(vec![2.0]), 2.0);
        assert_eq!(MeasuredExecutor::median(vec![3.0, 1.0]), 2.0);
        assert_eq!(MeasuredExecutor::median(vec![5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn quick_constructor_is_usable() {
        let mut exec = MeasuredExecutor::quick().with_seed(7);
        assert_eq!(exec.name(), "measured");
        assert!(exec.reps() >= 1);
        let alg = &enumerate_chain_algorithms(&[16, 16, 16, 16, 16]).unwrap()[0];
        let t = exec.execute_algorithm(alg);
        assert!(t.seconds > 0.0);
        assert!(exec.machine().peak_flops > 0.0);
    }

    #[test]
    fn reference_backend_execution_matches_native_numerics() {
        use crate::backend::{backend_by_name, ReferenceBackend};
        use lamb_expr::{Expression, TreeExpression};
        let expr = TreeExpression::parse("L[lower]*A*B").unwrap();
        let algs = expr.algorithms(&[20, 14, 9]).unwrap();
        let native = tiny_executor();
        let reference = tiny_executor().with_backend(Arc::new(ReferenceBackend));
        assert_eq!(reference.backend().name(), "reference");
        for alg in &algs {
            let a = native.compute_result(alg);
            let b = reference.compute_result(alg);
            assert!(max_abs_diff(&a, &b).unwrap() < 1e-9, "{}", alg.name);
        }
        assert!(backend_by_name("reference").is_some());
    }

    #[test]
    fn per_call_backend_overrides_execute_and_preserve_numerics() {
        use crate::backend::ReferenceBackend;
        let alg = &enumerate_chain_algorithms(&[18, 14, 10, 8, 6]).unwrap()[0];
        let expected = tiny_executor().compute_result(alg);
        let mut mixed = tiny_executor();
        // Route only the first call through the reference backend.
        mixed.set_call_backends(HashMap::from([(
            0usize,
            Arc::new(ReferenceBackend) as Arc<dyn Backend>,
        )]));
        let got = mixed.compute_result(alg);
        assert!(max_abs_diff(&expected, &got).unwrap() < 1e-9);
        let timing = mixed.execute_algorithm(alg);
        assert!(timing.seconds > 0.0);
    }
}
