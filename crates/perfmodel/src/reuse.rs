//! Cross-execution factor reuse: the [`FactorStore`] abstraction and the
//! [`ReuseReport`] accounting that executors produce when they run an
//! algorithm against a store of already-computed factors.
//!
//! The store is keyed by the *canonical node identities* of
//! [`lamb_expr::node_identities`]: a string that pins down the exact
//! computation (kernel, flags, logical dimensions) applied to the exact input
//! bytes (leaves are seeded from their operand ids by the deterministic
//! executors). Two calls with equal identities produce bit-identical values,
//! so a resident factor can be injected in place of re-running the call —
//! the factor-once/solve-many pattern of implicit ODE steppers, applied to
//! the paper's repeated-solve workloads.
//!
//! A store may hold actual matrices (measured execution) or just *note*
//! identities as resident (simulated prediction, where only the time model
//! needs to know a factor would be warm). The concrete sharded cache lives in
//! `lamb-plan` (`FactorCache`); [`SimpleFactorStore`] here is a plain
//! mutex-guarded map for executors, benches and tests.

use lamb_expr::Algorithm;
use lamb_matrix::Matrix;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A shared, thread-safe store of computed factors keyed by canonical node
/// identity.
pub trait FactorStore: Send + Sync {
    /// The resident matrix for `key`, if its bytes are held.
    fn lookup(&self, key: &str) -> Option<Arc<Matrix>>;

    /// Hold the bytes of a computed factor under `key`.
    fn store(&self, key: &str, value: Arc<Matrix>);

    /// Whether `key` is resident — either its bytes are held or it was
    /// [noted](FactorStore::note) as computed.
    fn contains(&self, key: &str) -> bool;

    /// Mark `key` as resident without holding bytes (prediction-side
    /// residency: the planner notes what a chosen algorithm will compute).
    fn note(&self, key: &str);
}

/// What an executor did with a factor store during one algorithm execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseReport {
    /// Calls actually executed.
    pub executed_calls: usize,
    /// Calls skipped because their result was resident in the store.
    pub reused_calls: usize,
    /// FLOPs of the skipped calls (work saved by reuse).
    pub reused_flops: u64,
    /// Executed-call count per kernel mnemonic (`"potrf"`, `"syrk"`, ...),
    /// the accounting the repeated-solve acceptance check reads.
    pub executed_kernels: BTreeMap<String, usize>,
}

impl ReuseReport {
    /// The report of an execution that reused nothing: every call executed.
    #[must_use]
    pub fn all_executed(alg: &Algorithm) -> Self {
        let mut report = ReuseReport {
            executed_calls: alg.calls.len(),
            ..ReuseReport::default()
        };
        for call in &alg.calls {
            *report
                .executed_kernels
                .entry(call.op.mnemonic().to_string())
                .or_insert(0) += 1;
        }
        report
    }

    /// Record one executed call.
    pub fn record_executed(&mut self, mnemonic: &str) {
        self.executed_calls += 1;
        *self
            .executed_kernels
            .entry(mnemonic.to_string())
            .or_insert(0) += 1;
    }

    /// Record one reused (skipped) call of `flops` FLOPs.
    pub fn record_reused(&mut self, flops: u64) {
        self.reused_calls += 1;
        self.reused_flops += flops;
    }

    /// Executed-call count for one kernel mnemonic.
    #[must_use]
    pub fn executed(&self, mnemonic: &str) -> usize {
        self.executed_kernels.get(mnemonic).copied().unwrap_or(0)
    }

    /// Fold another report into this one (batch-level accounting).
    pub fn merge(&mut self, other: &ReuseReport) {
        self.executed_calls += other.executed_calls;
        self.reused_calls += other.reused_calls;
        self.reused_flops += other.reused_flops;
        for (k, v) in &other.executed_kernels {
            *self.executed_kernels.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Entry state: bytes held, or identity merely noted as resident.
type Entry = Option<Arc<Matrix>>;

/// A plain mutex-guarded [`FactorStore`] for executors, benches and tests.
/// (The planner's sharded `FactorCache` lives in `lamb-plan`.)
#[derive(Debug, Default)]
pub struct SimpleFactorStore {
    entries: Mutex<HashMap<String, Entry>>,
}

impl SimpleFactorStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        SimpleFactorStore::default()
    }

    /// Number of resident identities (noted or held).
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("factor store lock").len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FactorStore for SimpleFactorStore {
    fn lookup(&self, key: &str) -> Option<Arc<Matrix>> {
        self.entries
            .lock()
            .expect("factor store lock")
            .get(key)
            .and_then(Clone::clone)
    }

    fn store(&self, key: &str, value: Arc<Matrix>) {
        self.entries
            .lock()
            .expect("factor store lock")
            .insert(key.to_string(), Some(value));
    }

    fn contains(&self, key: &str) -> bool {
        self.entries
            .lock()
            .expect("factor store lock")
            .contains_key(key)
    }

    fn note(&self, key: &str) {
        // Never downgrade held bytes to a bare note.
        self.entries
            .lock()
            .expect("factor store lock")
            .entry(key.to_string())
            .or_insert(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_store_holds_and_notes() {
        let store = SimpleFactorStore::new();
        assert!(store.is_empty());
        assert!(!store.contains("k"));
        store.note("k");
        assert!(store.contains("k"));
        assert!(store.lookup("k").is_none(), "a note holds no bytes");
        let m = Arc::new(Matrix::identity(3));
        store.store("k", Arc::clone(&m));
        assert!(store.lookup("k").is_some());
        // A later note must not evict the bytes.
        store.note("k");
        assert!(store.lookup("k").is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn reuse_report_accounts_and_merges() {
        let mut a = ReuseReport::default();
        a.record_executed("potrf");
        a.record_executed("trsm");
        a.record_reused(100);
        let mut b = ReuseReport::default();
        b.record_executed("trsm");
        b.record_reused(50);
        a.merge(&b);
        assert_eq!(a.executed_calls, 3);
        assert_eq!(a.reused_calls, 2);
        assert_eq!(a.reused_flops, 150);
        assert_eq!(a.executed("trsm"), 2);
        assert_eq!(a.executed("potrf"), 1);
        assert_eq!(a.executed("gemm"), 0);
    }
}
