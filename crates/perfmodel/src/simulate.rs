//! The simulated executor: a deterministic machine model that stands in for
//! the paper's Xeon + MKL testbed.
//!
//! Time attribution per kernel call:
//!
//! ```text
//! t(call) = flops / (peak · efficiency(call))  + overhead        (compute kernels)
//! t(copy) = moved_bytes / memory_bandwidth     + overhead        (triangle copy)
//! ```
//!
//! When an algorithm is executed *as a sequence*, a call that consumes the
//! operand produced by the immediately preceding call gets a bounded speedup
//! if that operand fits in the last-level cache — the *inter-kernel cache
//! effect* the paper discusses in Experiment 3. Isolated-call timings (the
//! benchmarks of Experiment 3) never receive this speedup, so the
//! benchmark-based predictor systematically differs from sequence execution
//! in exactly the way the paper's confusion matrices quantify.
//!
//! A small deterministic, instance-keyed multiplicative noise models run-to-
//! run and instance-to-instance measurement variability without breaking
//! reproducibility.

use crate::backend::{NATIVE_BACKEND_NAME, REFERENCE_BACKEND_NAME};
use crate::efficiency::{AnalyticEfficiencyModel, EfficiencyModel, ReferenceEfficiencyModel};
use crate::executor::{AlgorithmTiming, CallTiming, Executor};
use crate::machine::MachineModel;
use crate::reuse::{FactorStore, ReuseReport};
use lamb_expr::cse::cacheable_identities;
use lamb_expr::{Algorithm, KernelCall, KernelOp};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Tunable parameters of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatorConfig {
    /// Fixed per-call overhead in seconds (library dispatch, thread wake-up).
    pub per_call_overhead: f64,
    /// Maximum fractional speedup a call can get from finding its producer's
    /// output still in cache (0 disables inter-kernel cache effects).
    pub cache_reuse_gain: f64,
    /// Relative standard deviation of the multiplicative timing noise
    /// (0 disables noise).
    pub noise_sigma: f64,
    /// Seed mixed into the deterministic noise.
    pub noise_seed: u64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            per_call_overhead: 3.0e-6,
            cache_reuse_gain: 0.10,
            noise_sigma: 0.015,
            noise_seed: 0x5EED,
        }
    }
}

impl SimulatorConfig {
    /// A configuration with neither inter-kernel cache effects nor noise:
    /// sequence execution then equals the sum of isolated calls exactly.
    #[must_use]
    pub fn idealised() -> Self {
        SimulatorConfig {
            per_call_overhead: 0.0,
            cache_reuse_gain: 0.0,
            noise_sigma: 0.0,
            noise_seed: 0,
        }
    }
}

/// A deterministic executor driven by an [`EfficiencyModel`].
#[derive(Debug, Clone)]
pub struct SimulatedExecutor<E: EfficiencyModel = AnalyticEfficiencyModel> {
    machine: MachineModel,
    model: E,
    config: SimulatorConfig,
    /// Surface standing in for the naive reference backend, so the simulator
    /// can attribute distinct times per backend like the measured executor.
    reference: ReferenceEfficiencyModel,
    /// Per-call backend assignment honoured by whole-algorithm execution.
    backend_assignment: HashMap<usize, String>,
}

impl SimulatedExecutor<AnalyticEfficiencyModel> {
    /// A simulator configured to resemble the paper's testbed: the Xeon Silver
    /// 4210 machine model and the default analytic efficiency surfaces.
    #[must_use]
    pub fn paper_like() -> Self {
        SimulatedExecutor::new(
            MachineModel::paper_xeon_silver_4210(),
            AnalyticEfficiencyModel::default(),
            SimulatorConfig::default(),
        )
    }

    /// The paper-like simulator but with the smooth (no variant switches)
    /// efficiency model.
    #[must_use]
    pub fn paper_like_smooth() -> Self {
        SimulatedExecutor::new(
            MachineModel::paper_xeon_silver_4210(),
            AnalyticEfficiencyModel::smooth(),
            SimulatorConfig::default(),
        )
    }
}

impl<E: EfficiencyModel> SimulatedExecutor<E> {
    /// Build a simulator from its three ingredients.
    #[must_use]
    pub fn new(machine: MachineModel, model: E, config: SimulatorConfig) -> Self {
        SimulatedExecutor {
            machine,
            model,
            config,
            reference: ReferenceEfficiencyModel::default(),
            backend_assignment: HashMap::new(),
        }
    }

    /// The efficiency model driving the simulator.
    #[must_use]
    pub fn model(&self) -> &E {
        &self.model
    }

    /// The simulator configuration.
    #[must_use]
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Base (noise-free, isolation) time of a single call under a given
    /// efficiency surface.
    fn base_call_time_for(&self, call: &KernelCall, model: &dyn EfficiencyModel) -> f64 {
        let t = match call.op {
            KernelOp::CopyTriangle { n, .. } => {
                // Read one triangle, write the other: n(n-1)/2 elements each way.
                let elements = (n as f64) * (n as f64 - 1.0) / 2.0;
                let bytes = elements * 8.0 * 2.0;
                bytes / self.machine.mem_bandwidth
            }
            _ => {
                let eff = model.efficiency(&call.op);
                self.machine.time_at_efficiency(call.flops(), eff)
            }
        };
        t + self.config.per_call_overhead
    }

    /// Base (noise-free, isolation) time of a single call under the default
    /// (native) surface.
    fn base_call_time(&self, call: &KernelCall) -> f64 {
        self.base_call_time_for(call, &self.model)
    }

    /// The efficiency surface attributed to call `index` by the current
    /// backend assignment.
    fn call_model(&self, index: usize) -> &dyn EfficiencyModel {
        match self.backend_assignment.get(&index) {
            Some(name) if name == REFERENCE_BACKEND_NAME => &self.reference,
            _ => &self.model,
        }
    }

    /// Deterministic multiplicative noise in `[1 - 2σ, 1 + 2σ]`, keyed by an
    /// operation, a position, and the timing context.
    fn noise_factor(&self, op: &KernelOp, index: usize, context: &str) -> f64 {
        if self.config.noise_sigma == 0.0 {
            return 1.0;
        }
        let mut hasher = DefaultHasher::new();
        self.config.noise_seed.hash(&mut hasher);
        op.hash(&mut hasher);
        index.hash(&mut hasher);
        context.hash(&mut hasher);
        let u = (hasher.finish() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.config.noise_sigma * 2.0 * (2.0 * u - 1.0)
    }

    /// Fractional speedup applied to `call` when the previous call produced
    /// one of its inputs and that operand fits in the LLC.
    fn cache_reuse_factor(&self, alg: &Algorithm, index: usize) -> f64 {
        if index == 0 || self.config.cache_reuse_gain == 0.0 {
            return 1.0;
        }
        let prev = &alg.calls[index - 1];
        let call = &alg.calls[index];
        if !call.reads(prev.output) {
            return 1.0;
        }
        let Some(info) = alg.operand(prev.output) else {
            return 1.0;
        };
        let bytes = info.bytes() as f64;
        let llc = self.machine.llc_bytes as f64;
        if bytes >= llc {
            return 1.0;
        }
        // The benefit shrinks as the reused operand approaches the LLC size.
        let residency = 1.0 - bytes / llc;
        1.0 - self.config.cache_reuse_gain * residency
    }
}

impl<E: EfficiencyModel> Executor for SimulatedExecutor<E> {
    fn name(&self) -> String {
        "simulated".into()
    }

    fn machine(&self) -> &MachineModel {
        &self.machine
    }

    fn execute_algorithm(&mut self, alg: &Algorithm) -> AlgorithmTiming {
        let per_call: Vec<CallTiming> = alg
            .calls
            .iter()
            .enumerate()
            .map(|(i, call)| {
                let t = self.base_call_time_for(call, self.call_model(i))
                    * self.cache_reuse_factor(alg, i)
                    * self.noise_factor(&call.op, i, "sequence");
                CallTiming {
                    index: i,
                    label: call.label.clone(),
                    flops: call.flops(),
                    seconds: t,
                }
            })
            .collect();
        AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: per_call.iter().map(|c| c.seconds).sum(),
            per_call,
            flops: alg.flops(),
        }
    }

    /// Simulated execution against a factor store: calls whose
    /// [cacheable](lamb_expr::is_cacheable_op) result is resident cost zero
    /// seconds (the value would be injected, not recomputed); cacheable
    /// results this execution produces are *noted* in the store — the
    /// simulator models time, it has no bytes to deposit.
    fn execute_algorithm_reusing(
        &mut self,
        alg: &Algorithm,
        store: &dyn FactorStore,
    ) -> (AlgorithmTiming, ReuseReport) {
        let cacheable: HashMap<usize, String> = cacheable_identities(alg)
            .into_iter()
            .map(|(i, _, identity)| (i, identity))
            .collect();
        let mut report = ReuseReport::default();
        let per_call: Vec<CallTiming> = alg
            .calls
            .iter()
            .enumerate()
            .map(|(i, call)| {
                let seconds = match cacheable.get(&i) {
                    Some(key) if store.contains(key) => {
                        report.record_reused(call.flops());
                        0.0
                    }
                    key => {
                        if let Some(key) = key {
                            store.note(key);
                        }
                        report.record_executed(call.op.mnemonic());
                        self.base_call_time_for(call, self.call_model(i))
                            * self.cache_reuse_factor(alg, i)
                            * self.noise_factor(&call.op, i, "sequence")
                    }
                };
                CallTiming {
                    index: i,
                    label: call.label.clone(),
                    flops: call.flops(),
                    seconds,
                }
            })
            .collect();
        let timing = AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: per_call.iter().map(|c| c.seconds).sum(),
            per_call,
            flops: alg.flops(),
        };
        (timing, report)
    }

    fn time_isolated_call(&mut self, alg: &Algorithm, call_index: usize) -> f64 {
        // An isolated benchmark is identified by the call's *timing key*
        // alone: it has no notion of the position the call occupies inside
        // some algorithm, so (unlike sequence noise) its noise must not be
        // keyed on `call_index`, and it must not distinguish transposition
        // variants whose base time is identical (the efficiency model ignores
        // GEMM's transposition flags). This makes the benchmark memoisable by
        // timing key — Experiment 3, the planner's prediction cache and the
        // calibration store all rely on calls with equal timing keys having
        // identical isolated times.
        let call = &alg.calls[call_index];
        self.base_call_time(call) * self.noise_factor(&call.op.timing_key(), 0, "isolated")
    }

    fn backend_names(&self) -> Vec<String> {
        vec![
            NATIVE_BACKEND_NAME.to_string(),
            REFERENCE_BACKEND_NAME.to_string(),
        ]
    }

    fn time_isolated_call_on(&mut self, alg: &Algorithm, call_index: usize, backend: &str) -> f64 {
        if backend != REFERENCE_BACKEND_NAME {
            return self.time_isolated_call(alg, call_index);
        }
        // Same memoisability contract as the native isolated benchmark, under
        // the reference surface and a backend-distinguishing noise context.
        let call = &alg.calls[call_index];
        self.base_call_time_for(call, &self.reference)
            * self.noise_factor(&call.op.timing_key(), 0, "isolated:reference")
    }

    fn set_backend_assignment(&mut self, assignment: &HashMap<usize, String>) {
        self.backend_assignment = assignment.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms};

    #[test]
    fn simulation_is_deterministic() {
        let mut sim = SimulatedExecutor::paper_like();
        let algs = enumerate_chain_algorithms(&[300, 200, 100, 400, 250]).unwrap();
        let t1 = sim.execute_algorithm(&algs[0]);
        let t2 = sim.execute_algorithm(&algs[0]);
        assert_eq!(t1, t2);
    }

    #[test]
    fn times_are_positive_and_scale_with_work() {
        let mut sim = SimulatedExecutor::paper_like();
        let small = enumerate_chain_algorithms(&[50, 50, 50, 50, 50]).unwrap();
        let large = enumerate_chain_algorithms(&[500, 500, 500, 500, 500]).unwrap();
        let ts = sim.execute_algorithm(&small[0]).seconds;
        let tl = sim.execute_algorithm(&large[0]).seconds;
        assert!(ts > 0.0);
        assert!(tl > ts * 100.0, "1000x more FLOPs must take much longer");
    }

    #[test]
    fn efficiency_is_in_unit_interval_for_all_algorithms() {
        let mut sim = SimulatedExecutor::paper_like();
        let machine = sim.machine().clone();
        for alg in enumerate_aatb_algorithms(700, 450, 900) {
            let t = sim.execute_algorithm(&alg);
            let e = t.efficiency(&machine);
            assert!(e > 0.0 && e <= 1.0, "{}: efficiency {e}", alg.name);
        }
    }

    #[test]
    fn isolated_prediction_differs_only_through_cache_and_noise() {
        // With the idealised config the sequence time equals the sum of
        // isolated calls exactly.
        let mut ideal = SimulatedExecutor::new(
            MachineModel::paper_xeon_silver_4210(),
            AnalyticEfficiencyModel::default(),
            SimulatorConfig::idealised(),
        );
        let alg = &enumerate_aatb_algorithms(400, 300, 200)[0];
        let seq = ideal.execute_algorithm(alg);
        let pred = ideal.predict_from_isolated_calls(alg);
        assert!((seq.seconds - pred.seconds).abs() < 1e-15);

        // With the default config the consumer of the previous output is
        // faster in sequence than in isolation (cache reuse), so the
        // prediction overestimates.
        let mut real = SimulatedExecutor::paper_like();
        let seq = real.execute_algorithm(alg);
        let pred = real.predict_from_isolated_calls(alg);
        assert!(pred.seconds > seq.seconds * 0.98);
    }

    #[test]
    fn cache_reuse_only_applies_to_producer_consumer_pairs() {
        let sim = SimulatedExecutor::paper_like();
        let alg = &enumerate_aatb_algorithms(300, 200, 100)[0];
        // Call 1 (symm) consumes the output of call 0 (syrk): factor < 1.
        assert!(sim.cache_reuse_factor(alg, 1) < 1.0);
        // The first call never gets a reuse bonus.
        assert_eq!(sim.cache_reuse_factor(alg, 0), 1.0);
    }

    #[test]
    fn large_intermediates_do_not_fit_in_cache() {
        let sim = SimulatedExecutor::paper_like();
        // d0 = 2000 gives a 2000x2000 intermediate (32 MB) > 14 MiB LLC.
        let alg = &enumerate_aatb_algorithms(2000, 100, 100)[0];
        assert_eq!(sim.cache_reuse_factor(alg, 1), 1.0);
    }

    #[test]
    fn copy_triangle_costs_memory_time_not_flop_time() {
        let mut sim = SimulatedExecutor::paper_like();
        let algs = enumerate_aatb_algorithms(1000, 500, 500);
        let alg2 = &algs[1]; // syrk + copy + gemm
        let timing = sim.execute_algorithm(alg2);
        let copy = &timing.per_call[1];
        assert_eq!(copy.flops, 0);
        assert!(copy.seconds > 0.0);
        // The copy is memory bound and much cheaper than the surrounding
        // compute calls at this size.
        assert!(copy.seconds < timing.per_call[0].seconds);
        assert!(copy.seconds < timing.per_call[2].seconds);
    }

    #[test]
    fn noise_is_bounded() {
        let sim = SimulatedExecutor::paper_like();
        let alg = &enumerate_chain_algorithms(&[100, 100, 100, 100, 100]).unwrap()[0];
        for (i, call) in alg.calls.iter().enumerate() {
            let f = sim.noise_factor(&call.op, i, "sequence");
            assert!((f - 1.0).abs() <= 2.0 * sim.config().noise_sigma + 1e-12);
        }
    }

    #[test]
    fn resident_factors_cost_nothing_in_simulated_reuse() {
        use crate::reuse::{FactorStore, SimpleFactorStore};
        use lamb_expr::{Expression, TreeExpression};
        let expr = TreeExpression::parse("S[spd]^-1*B").unwrap();
        let algs = expr.algorithms(&[300, 40]).unwrap();
        let solve = algs
            .iter()
            .find(|a| a.kernel_summary().contains("potrf"))
            .unwrap();
        let mut sim = SimulatedExecutor::paper_like();
        let store = SimpleFactorStore::new();
        let (cold_t, cold) = sim.execute_algorithm_reusing(solve, &store);
        assert_eq!(cold.reused_calls, 0);
        assert_eq!(cold.executed("potrf"), 1);
        assert!(store.contains(
            &lamb_expr::cacheable_identities(solve)
                .first()
                .unwrap()
                .2
                .clone()
        ));
        let (warm_t, warm) = sim.execute_algorithm_reusing(solve, &store);
        assert_eq!(warm.executed("potrf"), 0);
        assert!(warm.reused_flops > 0);
        assert!(
            warm_t.seconds < cold_t.seconds * 0.7,
            "warm {} vs cold {}",
            warm_t.seconds,
            cold_t.seconds
        );
        // Reused calls are attributed exactly zero seconds.
        assert!(warm_t.per_call.iter().any(|c| c.seconds == 0.0));
    }

    #[test]
    fn backend_timings_cross_over_and_assignments_are_honoured() {
        use crate::calibrate::single_call_algorithm;
        use lamb_matrix::Trans;
        let mut sim = SimulatedExecutor::paper_like();
        assert_eq!(sim.backend_names(), vec!["native", "reference"]);
        let square = |n: usize| {
            single_call_algorithm(KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: n,
                n,
                k: n,
            })
        };
        // Crossover: at tiny sizes the reference (lower overhead per call in
        // relative efficiency terms) wins; at large sizes native wins big.
        let small = square(12);
        assert!(
            sim.time_isolated_call_on(&small, 0, "reference")
                < sim.time_isolated_call_on(&small, 0, "native")
        );
        let large = square(400);
        assert!(
            sim.time_isolated_call_on(&large, 0, "native") * 4.0
                < sim.time_isolated_call_on(&large, 0, "reference")
        );
        // Unknown names fall back to the default backend's time.
        assert_eq!(
            sim.time_isolated_call_on(&large, 0, "no-such-backend"),
            sim.time_isolated_call(&large, 0)
        );
        // A per-call assignment changes sequence execution deterministically.
        let alg = &enumerate_chain_algorithms(&[200, 200, 200, 200, 200]).unwrap()[0];
        let native_t = sim.execute_algorithm(alg);
        sim.set_backend_assignment(&HashMap::from([(0usize, "reference".to_string())]));
        let mixed_t = sim.execute_algorithm(alg);
        assert!(mixed_t.per_call[0].seconds > native_t.per_call[0].seconds);
        assert_eq!(mixed_t.per_call[1].seconds, native_t.per_call[1].seconds);
        sim.set_backend_assignment(&HashMap::new());
        assert_eq!(sim.execute_algorithm(alg), native_t);
    }

    #[test]
    fn isolated_times_are_invariant_under_gemm_transposition() {
        use crate::calibrate::single_call_algorithm;
        use lamb_matrix::Trans;
        let mut sim = SimulatedExecutor::paper_like();
        let plain = single_call_algorithm(KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 300,
            n: 200,
            k: 150,
        });
        let transposed = single_call_algorithm(KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: 300,
            n: 200,
            k: 150,
        });
        assert_eq!(
            sim.time_isolated_call(&plain, 0),
            sim.time_isolated_call(&transposed, 0),
            "equal timing keys must give bit-identical isolated times"
        );
    }
}
