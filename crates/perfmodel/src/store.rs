//! The persistent calibration store: a versioned on-disk format for machine
//! models, kernel efficiency profiles and isolated-call benchmark times.
//!
//! The paper's central claim is that FLOP-minimal algorithms are often not
//! time-minimal, so selection must be driven by *measured* kernel
//! performance. Those measurements are expensive — a calibration sweep runs
//! hundreds of real (or simulated) isolated-call benchmarks — and they are
//! stable across runs on the same machine, so re-benchmarking on every
//! process start is pure waste. A [`CalibrationStore`] captures one machine's
//! calibration data and persists it as JSON (hand-rolled in [`crate::json`];
//! the workspace is offline-vendored and has no `serde`):
//!
//! * the [`MachineModel`] the times were measured against,
//! * the [`SquareProfile`] efficiency curves (the paper's Figure 1),
//! * the [`CallTimeTable`] of isolated-call benchmark times, keyed by
//!   canonical timing key ([`lamb_expr::KernelOp::timing_key`]),
//! * staleness metadata: format version, executor, block configuration
//!   fingerprint, repetition count, creation/update timestamps, sweep count.
//!
//! Stores **merge**: an incremental calibration sweep loads the existing
//! store, adds its new measurements (newer entries win) and saves the union,
//! so coverage grows run over run. Loading a store and warm-starting a
//! planner's prediction cache from it reproduces the in-memory predictions
//! *bit-identically* — numbers are serialised with shortest round-trip
//! formatting — which is what makes "calibrate once, plan many" sound.
//!
//! ```
//! use lamb_expr::KernelOp;
//! use lamb_matrix::Trans;
//! use lamb_perfmodel::{CalibrationStore, MachineModel, SquareProfile};
//!
//! // Calibrate: record a profile curve and an isolated-call benchmark.
//! let mut store = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
//! store.profiles.push(SquareProfile::new("gemm", vec![100, 200], vec![0.31, 0.52]));
//! let op = KernelOp::Gemm { transa: Trans::No, transb: Trans::No, m: 100, n: 100, k: 100 };
//! store.calls.insert(op.clone(), 1.25e-4);
//!
//! // Save → load: the round-trip is lossless, down to the last bit.
//! let text = store.to_json();
//! let reloaded = CalibrationStore::from_json(&text).unwrap();
//! assert_eq!(reloaded.calls.get(&op), Some(1.25e-4));
//! assert_eq!(reloaded.profiles[0].interpolate(150), store.profiles[0].interpolate(150));
//! ```

use crate::json::{Json, JsonError};
use crate::machine::MachineModel;
use crate::profile::{CallTimeTable, SquareProfile};
use lamb_expr::KernelOp;
use lamb_kernels::{BlockConfig, TileVariant};
use lamb_matrix::{Side, Trans, Uplo};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Version of the on-disk format this build writes.
///
/// * **v1** — the original GEMM/SYRK/SYMM/copy call vocabulary.
/// * **v2** — adds the triangular kernels TRMM and TRSM (stored by canonical
///   timing key: effective triangle, transposition cleared). Structurally a
///   superset of v1: a v1 document is readable as-is, simply has no coverage
///   for the new kernels (see [`CalibrationStore::missing_kernels`]), and is
///   upgraded to v2 the next time it is saved.
/// * **v3** — adds the Cholesky factorisation POTRF (stored by its `uplo`
///   and order; POTRF keeps its triangle in the timing key). Same migration
///   contract: v1/v2 documents load as-is, report POTRF (and, for v1, the
///   triangular kernels) as missing coverage, and are upgraded to v3 on the
///   next save.
/// * **v4** — adds the general-solver tier: the pivoted LU factorisation
///   GETRF, the Householder QR factorisation, the reflector application
///   ORMQR, and the zero-FLOP packed-factor movers FACTORTRI (`laswp`-style
///   triangle extraction, keeps its `uplo`) and LASWP (pivot application).
///   Same migration contract: v1-v3 documents load as-is, report GETRF and
///   QR as missing sweep coverage, and are upgraded to v4 on the next save.
/// * **v5** — adds the optional `tuned` section recording the autotuned
///   [`BlockConfig`] (cache blocks, triangular block, register tile, parallel
///   policy) and the GFLOP/s it achieved, written by
///   `lamb calibrate --autotune`. Same migration contract: v1-v4 documents
///   load as-is with no tuned config ([`CalibrationStore::tuned`] is `None`),
///   and are upgraded to v5 on the next save.
/// * **v6** — makes the kernel *side* explicit: TRMM/TRSM and LASWP call
///   entries carry a `side` tag (documents without one parse as left-side,
///   which is the only side older builds could express), the sweep grows the
///   right-side variants `symm_r`/`trmm_r`/`trsm_r`, and an optional
///   `backends` section holds per-backend call tables and profiles for
///   non-default kernel backends (the top-level `profiles`/`calls` remain
///   the `native` backend's data, so v1-v5 documents are unchanged byte for
///   byte). Same migration contract: v1-v5 documents load as-is, report the
///   right-side kernels as missing sweep coverage, and are upgraded to v6 on
///   the next save.
pub const STORE_FORMAT_VERSION: u64 = 6;

/// Oldest on-disk format version this build still reads (and migrates).
pub const STORE_MIN_SUPPORTED_VERSION: u64 = 1;

/// Magic string identifying a calibration-store document.
pub const STORE_FORMAT_NAME: &str = "lamb-calibration-store";

/// The compute kernels a fully-covered store is expected to have benchmark
/// entries for — by definition, exactly the kernels the square calibration
/// sweep covers, so the two lists cannot drift apart.
pub const EXPECTED_KERNELS: [&str; 11] = crate::calibrate::SQUARE_SWEEP_KERNELS;

/// Relative peak-FLOPS drift beyond which a store is flagged as stale.
pub const PEAK_DRIFT_TOLERANCE: f64 = 0.05;

/// Age in seconds beyond which a store is flagged as stale (30 days).
pub const MAX_FRESH_AGE_SECONDS: u64 = 30 * 24 * 3600;

/// Staleness and provenance metadata carried by a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Name of the executor that produced the times (`"simulated"`,
    /// `"measured"`, ...). Mixing executors in one store is rejected by
    /// [`CalibrationStore::merge_from`].
    pub executor: String,
    /// Fingerprint of the kernel block configuration the measurements were
    /// taken under (see `lamb_kernels::BlockConfig::fingerprint`); timings
    /// are only comparable under the same configuration.
    pub block_fingerprint: String,
    /// Repetitions per measurement (the paper's protocol uses 10).
    pub timing_reps: usize,
    /// Unix timestamp (seconds) of the first calibration sweep.
    pub created_unix: u64,
    /// Unix timestamp (seconds) of the most recent sweep or merge.
    pub updated_unix: u64,
    /// How many calibration sweeps have been merged into this store.
    pub sweeps: u64,
}

/// Why a store could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is JSON but not a calibration store this build
    /// understands (missing fields, wrong magic, unsupported version, ...).
    Format(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Json(e) => write!(f, "{e}"),
            StoreError::Format(msg) => write!(f, "invalid calibration store: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<JsonError> for StoreError {
    fn from(e: JsonError) -> Self {
        StoreError::Json(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One reason a loaded store may no longer describe the current machine.
#[derive(Debug, Clone, PartialEq)]
pub enum StalenessWarning {
    /// The stored machine peak differs from the current one by more than
    /// [`PEAK_DRIFT_TOLERANCE`].
    PeakDrift {
        /// Peak FLOP/s recorded in the store.
        stored: f64,
        /// Peak FLOP/s of the machine in use now.
        current: f64,
    },
    /// The kernel block configuration changed since calibration.
    BlockConfigChanged {
        /// Fingerprint recorded in the store.
        stored: String,
        /// Fingerprint of the configuration in use now.
        current: String,
    },
    /// The newest sample is older than [`MAX_FRESH_AGE_SECONDS`].
    Aged {
        /// Age of the store in seconds.
        age_seconds: u64,
    },
}

impl fmt::Display for StalenessWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StalenessWarning::PeakDrift { stored, current } => write!(
                f,
                "machine peak drifted: store {:.1} GFLOP/s vs current {:.1} GFLOP/s",
                stored / 1e9,
                current / 1e9
            ),
            StalenessWarning::BlockConfigChanged { stored, current } => {
                write!(
                    f,
                    "block config changed: store `{stored}` vs current `{current}`"
                )
            }
            StalenessWarning::Aged { age_seconds } => {
                write!(f, "last sample is {} days old", age_seconds / (24 * 3600))
            }
        }
    }
}

/// The autotuned block configuration a store carries with it (format v5):
/// the coordinate-descent winner over `(tile, mc, kc, nc, tri_block,
/// parallel_flop_threshold)` and the GFLOP/s it achieved on the tuning
/// workload, so a calibrated store reproduces its machine's blocking on warm
/// start.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedConfig {
    /// The winning block configuration.
    pub config: BlockConfig,
    /// Best observed GFLOP/s under `config` on the tuning workload.
    pub gflops: f64,
}

/// Calibration data for one non-default kernel backend (format v6): the
/// same profile curves and isolated-call table the store keeps at top level
/// for the `native` backend, attributed to another [`crate::Backend`]
/// implementation so per-call backend selection can compare measured times.
#[derive(Debug, Clone)]
pub struct BackendCalibration {
    /// Backend name (`"reference"`, ...); the `native` backend's data lives
    /// in the store's top-level `profiles`/`calls` instead.
    pub name: String,
    /// Square-operand efficiency curves measured through this backend.
    pub profiles: Vec<SquareProfile>,
    /// Isolated-call benchmark times measured through this backend.
    pub calls: CallTimeTable,
}

/// Persistent calibration data for one machine + executor + block
/// configuration. See the [module docs](self) for the format contract.
#[derive(Debug, Clone)]
pub struct CalibrationStore {
    /// Staleness and provenance metadata.
    pub meta: StoreMeta,
    /// The machine the times were measured (or simulated) on.
    pub machine: MachineModel,
    /// Square-operand efficiency curves, one per kernel (Figure 1 data),
    /// measured through the default (`native`) backend.
    pub profiles: Vec<SquareProfile>,
    /// Isolated-call benchmark times keyed by canonical timing key,
    /// measured through the default (`native`) backend.
    pub calls: CallTimeTable,
    /// The autotuned block configuration, when a `--autotune` sweep has run
    /// (`None` for stores written by v1-v4 builds or untuned sweeps).
    pub tuned: Option<TunedConfig>,
    /// Per-backend tables for non-default backends (format v6; empty for
    /// stores written by v1-v5 builds or single-backend sweeps).
    pub backends: Vec<BackendCalibration>,
}

/// Current Unix time in seconds (0 if the clock is before the epoch).
#[must_use]
pub fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

impl CalibrationStore {
    /// A fresh, empty store for `machine`, attributed to `executor`, stamped
    /// with the current time.
    #[must_use]
    pub fn new(machine: MachineModel, executor: &str) -> Self {
        let now = now_unix();
        CalibrationStore {
            meta: StoreMeta {
                executor: executor.to_string(),
                block_fingerprint: String::new(),
                timing_reps: 0,
                created_unix: now,
                updated_unix: now,
                sweeps: 1,
            },
            machine,
            profiles: Vec::new(),
            calls: CallTimeTable::new(),
            tuned: None,
            backends: Vec::new(),
        }
    }

    /// The isolated-call table of the named backend: the top-level table for
    /// `native`, the matching `backends` section otherwise.
    #[must_use]
    pub fn backend_calls(&self, name: &str) -> Option<&CallTimeTable> {
        if name == crate::backend::NATIVE_BACKEND_NAME {
            Some(&self.calls)
        } else {
            self.backends
                .iter()
                .find(|b| b.name == name)
                .map(|b| &b.calls)
        }
    }

    /// The square-profile curves of the named backend.
    #[must_use]
    pub fn backend_profiles(&self, name: &str) -> Option<&[SquareProfile]> {
        if name == crate::backend::NATIVE_BACKEND_NAME {
            Some(&self.profiles)
        } else {
            self.backends
                .iter()
                .find(|b| b.name == name)
                .map(|b| b.profiles.as_slice())
        }
    }

    /// Mutable per-backend tables, creating the backend's section on first
    /// use; `native` aliases the store's top-level tables. This is what a
    /// calibration sweep writes through.
    pub fn backend_tables_mut(
        &mut self,
        name: &str,
    ) -> (&mut Vec<SquareProfile>, &mut CallTimeTable) {
        if name == crate::backend::NATIVE_BACKEND_NAME {
            return (&mut self.profiles, &mut self.calls);
        }
        if !self.backends.iter().any(|b| b.name == name) {
            self.backends.push(BackendCalibration {
                name: name.to_string(),
                profiles: Vec::new(),
                calls: CallTimeTable::new(),
            });
        }
        let section = self
            .backends
            .iter_mut()
            .find(|b| b.name == name)
            .expect("just inserted");
        (&mut section.profiles, &mut section.calls)
    }

    /// Every backend this store has calibration data for, `native` first.
    #[must_use]
    pub fn backend_names(&self) -> Vec<String> {
        let mut names = vec![crate::backend::NATIVE_BACKEND_NAME.to_string()];
        let mut extra: Vec<String> = self.backends.iter().map(|b| b.name.clone()).collect();
        extra.sort();
        names.extend(extra);
        names
    }

    /// Distinct benchmarked calls per coverage key for the named backend —
    /// [`CalibrationStore::coverage`], per backend.
    #[must_use]
    pub fn backend_coverage(&self, name: &str) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        if let Some(calls) = self.backend_calls(name) {
            for (op, _) in calls.entries() {
                *counts.entry(kernel_coverage_key(op)).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Sweep kernels the named backend has no benchmark entry for.
    #[must_use]
    pub fn backend_missing_kernels(&self, name: &str) -> Vec<&'static str> {
        let coverage = self.backend_coverage(name);
        EXPECTED_KERNELS
            .iter()
            .copied()
            .filter(|kernel| !coverage.contains_key(*kernel))
            .collect()
    }

    /// The autotuned block configuration this store carries, if any — what
    /// warm-starting planners and executors run their kernels under.
    #[must_use]
    pub fn tuned_block_config(&self) -> Option<&BlockConfig> {
        self.tuned.as_ref().map(|t| &t.config)
    }

    /// Merge `other` (assumed fresher) into this store: call times and
    /// profile samples from `other` win on conflicts, timestamps and sweep
    /// counts accumulate, and the machine model is taken from `other`.
    ///
    /// # Errors
    ///
    /// Refuses with [`StoreError::Format`] when the stores were produced by
    /// different executors or block configurations — their times are not
    /// comparable, and silently mixing them would poison predictions.
    pub fn merge_from(&mut self, other: &CalibrationStore) -> Result<(), StoreError> {
        if self.meta.executor != other.meta.executor {
            return Err(StoreError::Format(format!(
                "cannot merge `{}` calibration into a `{}` store",
                other.meta.executor, self.meta.executor
            )));
        }
        if !self.meta.block_fingerprint.is_empty()
            && !other.meta.block_fingerprint.is_empty()
            && self.meta.block_fingerprint != other.meta.block_fingerprint
        {
            return Err(StoreError::Format(format!(
                "cannot merge block config `{}` into `{}`",
                other.meta.block_fingerprint, self.meta.block_fingerprint
            )));
        }
        self.calls.merge_from(&other.calls);
        for profile in &other.profiles {
            match self
                .profiles
                .iter_mut()
                .find(|p| p.kernel == profile.kernel)
            {
                Some(mine) => *mine = merge_profiles(mine, profile),
                None => self.profiles.push(profile.clone()),
            }
        }
        for theirs in &other.backends {
            match self.backends.iter_mut().find(|b| b.name == theirs.name) {
                Some(mine) => {
                    mine.calls.merge_from(&theirs.calls);
                    for profile in &theirs.profiles {
                        match mine
                            .profiles
                            .iter_mut()
                            .find(|p| p.kernel == profile.kernel)
                        {
                            Some(p) => *p = merge_profiles(p, profile),
                            None => mine.profiles.push(profile.clone()),
                        }
                    }
                }
                None => self.backends.push(theirs.clone()),
            }
        }
        self.machine = other.machine.clone();
        if other.tuned.is_some() {
            self.tuned = other.tuned.clone();
        }
        if !other.meta.block_fingerprint.is_empty() {
            self.meta.block_fingerprint = other.meta.block_fingerprint.clone();
        }
        if other.meta.timing_reps != 0 {
            self.meta.timing_reps = other.meta.timing_reps;
        }
        self.meta.created_unix = self.meta.created_unix.min(other.meta.created_unix);
        self.meta.updated_unix = self.meta.updated_unix.max(other.meta.updated_unix);
        self.meta.sweeps += other.meta.sweeps;
        Ok(())
    }

    /// Check whether this store still describes the given machine and block
    /// configuration at time `now_unix`; an empty result means fresh.
    #[must_use]
    pub fn staleness(
        &self,
        machine: &MachineModel,
        block_fingerprint: &str,
        now_unix: u64,
    ) -> Vec<StalenessWarning> {
        let mut warnings = Vec::new();
        let stored = self.machine.peak_flops;
        let current = machine.peak_flops;
        if current > 0.0 && ((stored - current) / current).abs() > PEAK_DRIFT_TOLERANCE {
            warnings.push(StalenessWarning::PeakDrift { stored, current });
        }
        if !self.meta.block_fingerprint.is_empty()
            && !block_fingerprint.is_empty()
            && self.meta.block_fingerprint != block_fingerprint
        {
            warnings.push(StalenessWarning::BlockConfigChanged {
                stored: self.meta.block_fingerprint.clone(),
                current: block_fingerprint.to_string(),
            });
        }
        let age = now_unix.saturating_sub(self.meta.updated_unix);
        if age > MAX_FRESH_AGE_SECONDS {
            warnings.push(StalenessWarning::Aged { age_seconds: age });
        }
        warnings
    }

    /// Distinct benchmarked calls per kernel mnemonic, for coverage reports.
    #[must_use]
    pub fn coverage(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for (op, _) in self.calls.entries() {
            *counts.entry(kernel_coverage_key(op)).or_insert(0) += 1;
        }
        counts
    }

    /// Compute kernels with no benchmark entry at all — the coverage gap a
    /// migrated v1 store reports for the triangular kernels until the next
    /// calibration sweep fills them in.
    #[must_use]
    pub fn missing_kernels(&self) -> Vec<&'static str> {
        let coverage = self.coverage();
        EXPECTED_KERNELS
            .iter()
            .copied()
            .filter(|kernel| !coverage.contains_key(*kernel))
            .collect()
    }

    /// Serialise to the versioned JSON document. Call entries are sorted by
    /// their display form, so equal stores serialise to equal bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let meta = Json::Obj(vec![
            ("executor".into(), Json::Str(self.meta.executor.clone())),
            (
                "block".into(),
                Json::Str(self.meta.block_fingerprint.clone()),
            ),
            ("reps".into(), Json::Num(self.meta.timing_reps as f64)),
            (
                "created_unix".into(),
                Json::Num(self.meta.created_unix as f64),
            ),
            (
                "updated_unix".into(),
                Json::Num(self.meta.updated_unix as f64),
            ),
            ("sweeps".into(), Json::Num(self.meta.sweeps as f64)),
        ]);
        let machine = Json::Obj(vec![
            ("name".into(), Json::Str(self.machine.name.clone())),
            ("peak_flops".into(), Json::Num(self.machine.peak_flops)),
            ("cores".into(), Json::Num(self.machine.cores as f64)),
            ("llc_bytes".into(), Json::Num(self.machine.llc_bytes as f64)),
            (
                "mem_bandwidth".into(),
                Json::Num(self.machine.mem_bandwidth),
            ),
        ]);
        let profiles = profiles_to_json(&self.profiles);
        let calls = calls_to_json(&self.calls);
        let mut fields = vec![
            ("format".into(), Json::Str(STORE_FORMAT_NAME.into())),
            ("version".into(), Json::Num(STORE_FORMAT_VERSION as f64)),
            ("meta".into(), meta),
            ("machine".into(), machine),
            ("profiles".into(), profiles),
            ("calls".into(), calls),
        ];
        if let Some(tuned) = &self.tuned {
            let cfg = &tuned.config;
            fields.push((
                "tuned".into(),
                Json::Obj(vec![
                    ("mc".into(), Json::Num(cfg.mc as f64)),
                    ("kc".into(), Json::Num(cfg.kc as f64)),
                    ("nc".into(), Json::Num(cfg.nc as f64)),
                    ("tri_block".into(), Json::Num(cfg.tri_block as f64)),
                    ("tile".into(), Json::Str(cfg.tile.tag().into())),
                    ("parallel".into(), Json::Bool(cfg.parallel)),
                    (
                        "parallel_flop_threshold".into(),
                        Json::Num(cfg.parallel_flop_threshold as f64),
                    ),
                    ("gflops".into(), Json::Num(tuned.gflops)),
                ]),
            ));
        }
        if !self.backends.is_empty() {
            let mut sections: Vec<&BackendCalibration> = self.backends.iter().collect();
            sections.sort_by(|a, b| a.name.cmp(&b.name));
            fields.push((
                "backends".into(),
                Json::Arr(
                    sections
                        .into_iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(b.name.clone())),
                                ("profiles".into(), profiles_to_json(&b.profiles)),
                                ("calls".into(), calls_to_json(&b.calls)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields).pretty()
    }

    /// Parse a store from its JSON document.
    ///
    /// # Errors
    ///
    /// [`StoreError::Json`] for malformed JSON, [`StoreError::Format`] for a
    /// document that is not a supported calibration store.
    pub fn from_json(text: &str) -> Result<Self, StoreError> {
        let doc = Json::parse(text)?;
        let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
        if format != STORE_FORMAT_NAME {
            return Err(StoreError::Format(format!(
                "not a {STORE_FORMAT_NAME} document (format: `{format}`)"
            )));
        }
        let version = field_u64(&doc, "version")?;
        if !(STORE_MIN_SUPPORTED_VERSION..=STORE_FORMAT_VERSION).contains(&version) {
            return Err(StoreError::Format(format!(
                "unsupported store version {version} (this build reads versions \
                 {STORE_MIN_SUPPORTED_VERSION}..={STORE_FORMAT_VERSION})"
            )));
        }
        let meta_doc = doc
            .get("meta")
            .ok_or_else(|| StoreError::Format("missing `meta`".into()))?;
        let meta = StoreMeta {
            executor: field_str(meta_doc, "executor")?,
            block_fingerprint: field_str(meta_doc, "block")?,
            timing_reps: field_u64(meta_doc, "reps")? as usize,
            created_unix: field_u64(meta_doc, "created_unix")?,
            updated_unix: field_u64(meta_doc, "updated_unix")?,
            sweeps: field_u64(meta_doc, "sweeps")?,
        };
        let machine_doc = doc
            .get("machine")
            .ok_or_else(|| StoreError::Format("missing `machine`".into()))?;
        let machine = MachineModel {
            name: field_str(machine_doc, "name")?,
            peak_flops: field_f64(machine_doc, "peak_flops")?,
            cores: field_u64(machine_doc, "cores")? as usize,
            llc_bytes: field_u64(machine_doc, "llc_bytes")?,
            mem_bandwidth: field_f64(machine_doc, "mem_bandwidth")?,
        };
        let profiles = profiles_from_json(field_array(&doc, "profiles")?)?;
        let calls = calls_from_json(field_array(&doc, "calls")?)?;
        let mut backends = Vec::new();
        if let Some(sections) = doc.get("backends").and_then(Json::as_array) {
            for section in sections {
                backends.push(BackendCalibration {
                    name: field_str(section, "name")?,
                    profiles: profiles_from_json(field_array(section, "profiles")?)?,
                    calls: calls_from_json(field_array(section, "calls")?)?,
                });
            }
        }
        let tuned = match doc.get("tuned") {
            None | Some(Json::Null) => None,
            Some(t) => {
                let tile_tag = field_str(t, "tile")?;
                let tile = TileVariant::parse(&tile_tag).ok_or_else(|| {
                    StoreError::Format(format!("unknown register tile `{tile_tag}`"))
                })?;
                let config = BlockConfig {
                    mc: field_u64(t, "mc")? as usize,
                    kc: field_u64(t, "kc")? as usize,
                    nc: field_u64(t, "nc")? as usize,
                    tri_block: field_u64(t, "tri_block")? as usize,
                    tile,
                    parallel: field_bool(t, "parallel")?,
                    parallel_flop_threshold: field_u64(t, "parallel_flop_threshold")?,
                };
                let gflops = field_f64(t, "gflops")?;
                if !(gflops.is_finite() && gflops >= 0.0) {
                    return Err(StoreError::Format(format!(
                        "tuned config has invalid gflops {gflops}"
                    )));
                }
                Some(TunedConfig { config, gflops })
            }
        };
        Ok(CalibrationStore {
            meta,
            machine,
            profiles,
            calls,
            tuned,
            backends,
        })
    }

    /// Write the store to `path` (atomically: a temp file is renamed over the
    /// target, so a crash never leaves a truncated store).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read a store from `path`.
    ///
    /// # Errors
    ///
    /// See [`CalibrationStore::from_json`]; filesystem failures surface as
    /// [`StoreError::Io`].
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path)?;
        CalibrationStore::from_json(&text)
    }
}

/// Union of two profiles for the same kernel; `newer` wins at shared sizes.
fn merge_profiles(older: &SquareProfile, newer: &SquareProfile) -> SquareProfile {
    let mut samples: BTreeMap<usize, f64> = older
        .sizes
        .iter()
        .copied()
        .zip(older.efficiencies.iter().copied())
        .collect();
    for (&size, &eff) in newer.sizes.iter().zip(&newer.efficiencies) {
        samples.insert(size, eff);
    }
    let (sizes, efficiencies): (Vec<usize>, Vec<f64>) = samples.into_iter().unzip();
    SquareProfile::new(&older.kernel, sizes, efficiencies)
}

/// Coverage-report key for a benchmarked call: the kernel mnemonic, with a
/// `_r` suffix for the right-side variants of the sided compute kernels so
/// sweep coverage of `B·L` is never mistaken for coverage of `L·B`. The keys
/// match the [`crate::calibrate::SQUARE_SWEEP_KERNELS`] naming.
#[must_use]
pub fn kernel_coverage_key(op: &KernelOp) -> String {
    match op {
        KernelOp::Symm {
            side: Side::Right, ..
        }
        | KernelOp::Trmm {
            side: Side::Right, ..
        }
        | KernelOp::Trsm {
            side: Side::Right, ..
        } => format!("{}_r", op.mnemonic()),
        _ => op.mnemonic().to_string(),
    }
}

fn profiles_to_json(profiles: &[SquareProfile]) -> Json {
    Json::Arr(
        profiles
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("kernel".into(), Json::Str(p.kernel.clone())),
                    (
                        "sizes".into(),
                        Json::Arr(p.sizes.iter().map(|&s| Json::Num(s as f64)).collect()),
                    ),
                    (
                        "efficiencies".into(),
                        Json::Arr(p.efficiencies.iter().map(|&e| Json::Num(e)).collect()),
                    ),
                ])
            })
            .collect(),
    )
}

fn calls_to_json(calls: &CallTimeTable) -> Json {
    let mut entries: Vec<(&KernelOp, f64)> = calls.entries().collect();
    entries.sort_by_key(|(op, _)| op.to_string());
    Json::Arr(
        entries
            .into_iter()
            .map(|(op, seconds)| op_to_json(op, seconds))
            .collect(),
    )
}

fn profiles_from_json(docs: &[Json]) -> Result<Vec<SquareProfile>, StoreError> {
    let mut profiles = Vec::new();
    for p in docs {
        let kernel = field_str(p, "kernel")?;
        let sizes: Vec<usize> = field_array(p, "sizes")?
            .iter()
            .map(|s| {
                s.as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| StoreError::Format("profile size is not an integer".into()))
            })
            .collect::<Result<_, _>>()?;
        let efficiencies: Vec<f64> = field_array(p, "efficiencies")?
            .iter()
            .map(|e| {
                e.as_f64()
                    .ok_or_else(|| StoreError::Format("profile efficiency is not a number".into()))
            })
            .collect::<Result<_, _>>()?;
        if sizes.len() != efficiencies.len()
            || sizes.is_empty()
            || !sizes.windows(2).all(|w| w[0] < w[1])
        {
            return Err(StoreError::Format(format!(
                "profile `{kernel}` has inconsistent samples"
            )));
        }
        profiles.push(SquareProfile::new(&kernel, sizes, efficiencies));
    }
    Ok(profiles)
}

fn calls_from_json(docs: &[Json]) -> Result<CallTimeTable, StoreError> {
    let mut calls = CallTimeTable::new();
    for entry in docs {
        let (op, seconds) = op_from_json(entry)?;
        calls.insert(op, seconds);
    }
    Ok(calls)
}

fn op_to_json(op: &KernelOp, seconds: f64) -> Json {
    let mut fields: Vec<(String, Json)> = vec![("op".into(), Json::Str(op.mnemonic().into()))];
    match *op {
        // GEMM is stored by timing key, so the (canonical, cleared)
        // transposition flags are omitted from the document.
        KernelOp::Gemm { m, n, k, .. } => {
            fields.push(("m".into(), Json::Num(m as f64)));
            fields.push(("n".into(), Json::Num(n as f64)));
            fields.push(("k".into(), Json::Num(k as f64)));
        }
        KernelOp::Syrk { uplo, trans, n, k } => {
            fields.push(("uplo".into(), Json::Str(uplo.tag().to_string())));
            fields.push(("trans".into(), Json::Str(trans.tag().to_string())));
            fields.push(("n".into(), Json::Num(n as f64)));
            fields.push(("k".into(), Json::Num(k as f64)));
        }
        KernelOp::Symm { side, uplo, m, n } => {
            fields.push(("side".into(), Json::Str(side.tag().to_string())));
            fields.push(("uplo".into(), Json::Str(uplo.tag().to_string())));
            fields.push(("m".into(), Json::Num(m as f64)));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        // TRMM/TRSM are stored by timing key (side kept, effective triangle,
        // canonical cleared transposition), so side + uplo tags are written.
        KernelOp::Trmm {
            side, uplo, m, n, ..
        }
        | KernelOp::Trsm {
            side, uplo, m, n, ..
        } => {
            fields.push(("side".into(), Json::Str(side.tag().to_string())));
            fields.push(("uplo".into(), Json::Str(uplo.tag().to_string())));
            fields.push(("m".into(), Json::Num(m as f64)));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        KernelOp::Potrf { uplo, n } => {
            fields.push(("uplo".into(), Json::Str(uplo.tag().to_string())));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        KernelOp::CopyTriangle { uplo, n } => {
            fields.push(("uplo".into(), Json::Str(uplo.tag().to_string())));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        KernelOp::Getrf { n } => {
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        KernelOp::Qr { m, n } => {
            fields.push(("m".into(), Json::Num(m as f64)));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        KernelOp::PivotApply { side, m, n } => {
            fields.push(("side".into(), Json::Str(side.tag().to_string())));
            fields.push(("m".into(), Json::Num(m as f64)));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
        KernelOp::Ormqr { m, n, k } => {
            fields.push(("m".into(), Json::Num(m as f64)));
            fields.push(("n".into(), Json::Num(n as f64)));
            fields.push(("k".into(), Json::Num(k as f64)));
        }
        KernelOp::FactorTri { uplo, n } => {
            fields.push(("uplo".into(), Json::Str(uplo.tag().to_string())));
            fields.push(("n".into(), Json::Num(n as f64)));
        }
    }
    fields.push(("seconds".into(), Json::Num(seconds)));
    Json::Obj(fields)
}

fn op_from_json(entry: &Json) -> Result<(KernelOp, f64), StoreError> {
    let kind = field_str(entry, "op")?;
    let dim = |name: &str| field_u64(entry, name).map(|v| v as usize);
    // Documents from before format v6 have no `side` tag on TRMM/TRSM/LASWP
    // entries; those builds could only express the left side.
    let side_or_left = || match entry.get("side").and_then(Json::as_str) {
        Some(tag) => parse_side(tag),
        None => Ok(Side::Left),
    };
    let op = match kind.as_str() {
        "gemm" => KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: dim("m")?,
            n: dim("n")?,
            k: dim("k")?,
        },
        "syrk" => KernelOp::Syrk {
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            trans: parse_trans(&field_str(entry, "trans")?)?,
            n: dim("n")?,
            k: dim("k")?,
        },
        "symm" => KernelOp::Symm {
            side: parse_side(&field_str(entry, "side")?)?,
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            m: dim("m")?,
            n: dim("n")?,
        },
        "trmm" => KernelOp::Trmm {
            side: side_or_left()?,
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            trans: Trans::No,
            m: dim("m")?,
            n: dim("n")?,
        },
        "trsm" => KernelOp::Trsm {
            side: side_or_left()?,
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            trans: Trans::No,
            m: dim("m")?,
            n: dim("n")?,
        },
        "potrf" => KernelOp::Potrf {
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            n: dim("n")?,
        },
        "copy" => KernelOp::CopyTriangle {
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            n: dim("n")?,
        },
        "getrf" => KernelOp::Getrf { n: dim("n")? },
        "qr" => KernelOp::Qr {
            m: dim("m")?,
            n: dim("n")?,
        },
        "ormqr" => KernelOp::Ormqr {
            m: dim("m")?,
            n: dim("n")?,
            k: dim("k")?,
        },
        "factortri" => KernelOp::FactorTri {
            uplo: parse_uplo(&field_str(entry, "uplo")?)?,
            n: dim("n")?,
        },
        "laswp" => KernelOp::PivotApply {
            side: side_or_left()?,
            m: dim("m")?,
            n: dim("n")?,
        },
        other => return Err(StoreError::Format(format!("unknown call kind `{other}`"))),
    };
    let seconds = field_f64(entry, "seconds")?;
    if !(seconds.is_finite() && seconds >= 0.0) {
        return Err(StoreError::Format(format!(
            "call `{op}` has invalid time {seconds}"
        )));
    }
    Ok((op, seconds))
}

fn field_str(doc: &Json, key: &str) -> Result<String, StoreError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| StoreError::Format(format!("missing or non-string field `{key}`")))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, StoreError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| StoreError::Format(format!("missing or non-integer field `{key}`")))
}

fn field_bool(doc: &Json, key: &str) -> Result<bool, StoreError> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(StoreError::Format(format!(
            "missing or non-boolean field `{key}`"
        ))),
    }
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, StoreError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| StoreError::Format(format!("missing or non-numeric field `{key}`")))
}

fn field_array<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], StoreError> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| StoreError::Format(format!("missing or non-array field `{key}`")))
}

fn parse_trans(tag: &str) -> Result<Trans, StoreError> {
    match tag {
        "N" => Ok(Trans::No),
        "T" => Ok(Trans::Yes),
        other => Err(StoreError::Format(format!("unknown trans tag `{other}`"))),
    }
}

fn parse_uplo(tag: &str) -> Result<Uplo, StoreError> {
    match tag {
        "L" => Ok(Uplo::Lower),
        "U" => Ok(Uplo::Upper),
        other => Err(StoreError::Format(format!("unknown uplo tag `{other}`"))),
    }
}

fn parse_side(tag: &str) -> Result<Side, StoreError> {
    match tag {
        "L" => Ok(Side::Left),
        "R" => Ok(Side::Right),
        other => Err(StoreError::Format(format!("unknown side tag `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> CalibrationStore {
        let mut store = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        store.meta.block_fingerprint = "mc128-kc256-nc4096".into();
        store.meta.timing_reps = 10;
        store
            .profiles
            .push(SquareProfile::new("gemm", vec![100, 300], vec![0.3, 0.6]));
        store
            .profiles
            .push(SquareProfile::new("syrk", vec![100, 300], vec![0.2, 0.5]));
        store.calls.insert(
            KernelOp::Gemm {
                transa: Trans::Yes, // canonicalised to N on insert
                transb: Trans::No,
                m: 100,
                n: 200,
                k: 300,
            },
            1.0 / 3.0,
        );
        store.calls.insert(
            KernelOp::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                n: 50,
                k: 70,
            },
            2.5e-4,
        );
        store.calls.insert(
            KernelOp::Symm {
                side: Side::Right,
                uplo: Uplo::Upper,
                m: 40,
                n: 60,
            },
            1.125e-5,
        );
        store.calls.insert(
            KernelOp::Symm {
                side: Side::Left,
                uplo: Uplo::Lower,
                m: 44,
                n: 28,
            },
            6.5e-5,
        );
        store.calls.insert(
            KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::Yes, // canonicalised to (Upper, N) on insert
                m: 80,
                n: 35,
            },
            3.25e-4,
        );
        store.calls.insert(
            KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 30,
                n: 66,
            },
            2.75e-4,
        );
        store.calls.insert(
            KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 64,
                n: 16,
            },
            9.5e-5,
        );
        store.calls.insert(
            KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Upper,
                trans: Trans::Yes, // canonicalised to (R, Lower, N) on insert
                m: 12,
                n: 48,
            },
            1.75e-4,
        );
        store.calls.insert(
            KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 72,
            },
            4.75e-4,
        );
        store.calls.insert(
            KernelOp::CopyTriangle {
                uplo: Uplo::Lower,
                n: 90,
            },
            7.0e-7,
        );
        store.calls.insert(KernelOp::Getrf { n: 56 }, 3.125e-4);
        store.calls.insert(KernelOp::Qr { m: 96, n: 24 }, 5.5e-4);
        store
            .calls
            .insert(KernelOp::Ormqr { m: 96, n: 24, k: 5 }, 8.25e-5);
        store.calls.insert(
            KernelOp::FactorTri {
                uplo: Uplo::Upper,
                n: 56,
            },
            4.0e-7,
        );
        store.calls.insert(
            KernelOp::PivotApply {
                side: Side::Left,
                m: 56,
                n: 5,
            },
            2.0e-7,
        );
        store
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let store = sample_store();
        let text = store.to_json();
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.meta, store.meta);
        assert_eq!(back.machine, store.machine);
        assert_eq!(back.profiles, store.profiles);
        assert_eq!(back.calls.len(), store.calls.len());
        let mut original = store.calls.clone();
        let mut reloaded = back.calls.clone();
        for (op, _) in store.calls.entries() {
            let a = original.lookup(op).unwrap();
            let b = reloaded.lookup(op).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "{op}");
        }
        // Serialisation is deterministic: same store, same bytes.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn gemm_lookup_is_transpose_invariant_after_reload() {
        let store = sample_store();
        let back = CalibrationStore::from_json(&store.to_json()).unwrap();
        let mut calls = back.calls;
        let transposed = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::Yes,
            m: 100,
            n: 200,
            k: 300,
        };
        assert_eq!(calls.lookup(&transposed), Some(1.0 / 3.0));
    }

    #[test]
    fn wrong_format_version_and_garbage_are_rejected() {
        assert!(matches!(
            CalibrationStore::from_json("{ not json"),
            Err(StoreError::Json(_))
        ));
        assert!(matches!(
            CalibrationStore::from_json(r#"{"format": "something-else"}"#),
            Err(StoreError::Format(_))
        ));
        let mut text = sample_store().to_json();
        text = text.replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 999",
        );
        let err = CalibrationStore::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("unsupported store version 999"));
    }

    #[test]
    fn merge_unions_calls_and_profiles_and_accumulates_meta() {
        let mut base = sample_store();
        base.meta.created_unix = 100;
        base.meta.updated_unix = 200;
        let mut sweep = CalibrationStore::new(
            MachineModel::paper_xeon_silver_4210().with_peak(360.0e9),
            "simulated",
        );
        sweep.meta.block_fingerprint = base.meta.block_fingerprint.clone();
        sweep.meta.created_unix = 300;
        sweep.meta.updated_unix = 400;
        // Refines gemm at a shared size and extends the curve.
        sweep
            .profiles
            .push(SquareProfile::new("gemm", vec![300, 500], vec![0.65, 0.8]));
        sweep.calls.insert(
            KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 100,
                n: 200,
                k: 300,
            },
            0.25, // fresher measurement of an existing key
        );
        sweep.calls.insert(
            KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 999,
                n: 1,
                k: 1,
            },
            1e-6,
        );
        base.merge_from(&sweep).unwrap();
        assert_eq!(base.meta.sweeps, 2);
        assert_eq!(base.meta.created_unix, 100);
        assert_eq!(base.meta.updated_unix, 400);
        assert_eq!(base.machine.peak_flops, 360.0e9);
        let gemm = base.profiles.iter().find(|p| p.kernel == "gemm").unwrap();
        assert_eq!(gemm.sizes, vec![100, 300, 500]);
        assert_eq!(gemm.efficiencies, vec![0.3, 0.65, 0.8]);
        assert_eq!(base.calls.len(), sample_store().calls.len() + 1);
        let mut calls = base.calls.clone();
        assert_eq!(
            calls.lookup(&KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 100,
                n: 200,
                k: 300,
            }),
            Some(0.25)
        );
    }

    #[test]
    fn merging_incompatible_stores_is_refused() {
        let mut base = sample_store();
        let other = CalibrationStore::new(MachineModel::generic_laptop(), "measured");
        assert!(base.merge_from(&other).is_err());
        let mut different_block = sample_store();
        different_block.meta.block_fingerprint = "mc64-kc64-nc64".into();
        assert!(base.merge_from(&different_block).is_err());
    }

    #[test]
    fn staleness_flags_drift_age_and_block_changes() {
        let store = sample_store();
        let now = store.meta.updated_unix;
        assert!(store
            .staleness(&store.machine, &store.meta.block_fingerprint, now)
            .is_empty());
        let faster = store
            .machine
            .clone()
            .with_peak(store.machine.peak_flops * 1.5);
        let warnings = store.staleness(&faster, "other-config", now + 40 * 24 * 3600);
        assert_eq!(warnings.len(), 3);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, StalenessWarning::PeakDrift { .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, StalenessWarning::BlockConfigChanged { .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, StalenessWarning::Aged { .. })));
        for w in &warnings {
            assert!(!w.to_string().is_empty());
        }
    }

    #[test]
    fn save_and_load_round_trip_through_the_filesystem() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("lamb-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calibration.json");
        store.save(&path).unwrap();
        let back = CalibrationStore::load(&path).unwrap();
        assert_eq!(back.to_json(), store.to_json());
        assert!(CalibrationStore::load(&dir.join("missing.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coverage_counts_by_kernel() {
        let store = sample_store();
        let cov = store.coverage();
        for kernel in [
            "gemm",
            "syrk",
            "symm",
            "symm_r",
            "trmm",
            "trmm_r",
            "trsm",
            "trsm_r",
            "potrf",
            "copy",
            "getrf",
            "qr",
            "ormqr",
            "factortri",
            "laswp",
        ] {
            assert_eq!(cov.get(kernel), Some(&1), "{kernel}");
        }
        assert!(store.missing_kernels().is_empty());
    }

    #[test]
    fn triangular_lookups_are_timing_key_invariant_after_reload() {
        // The (Lower, T) insert canonicalised to (Upper, N); after a reload
        // both spellings hit the same entry.
        let back = CalibrationStore::from_json(&sample_store().to_json()).unwrap();
        let mut calls = back.calls;
        let stored_lower_t = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 80,
            n: 35,
        };
        let stored_upper_n = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 80,
            n: 35,
        };
        assert_eq!(calls.lookup(&stored_lower_t), Some(3.25e-4));
        assert_eq!(calls.lookup(&stored_upper_n), Some(3.25e-4));
    }

    #[test]
    fn v1_documents_load_report_missing_coverage_and_migrate() {
        // Reconstruct what the v1 build wrote: a version-1 document whose
        // call table has only the original GEMM/SYRK/SYMM/copy vocabulary.
        let mut old = sample_store();
        old.calls = CallTimeTable::from_entries(
            old.calls
                .entries()
                .filter(|(op, _)| {
                    matches!(
                        op,
                        KernelOp::Gemm { .. }
                            | KernelOp::Syrk { .. }
                            | KernelOp::Symm { .. }
                            | KernelOp::CopyTriangle { .. }
                    )
                })
                .map(|(op, s)| (op.clone(), s)),
        );
        let v1_text = old.to_json().replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 1",
        );

        // It loads under the current build...
        let migrated = CalibrationStore::from_json(&v1_text).unwrap();
        assert_eq!(migrated.calls.len(), old.calls.len());
        // ...reports the coverage gap for every newer sweep kernel...
        assert_eq!(
            migrated.missing_kernels(),
            vec!["trmm", "trsm", "potrf", "getrf", "qr", "trmm_r", "trsm_r"]
        );

        // ...and after merging a sweep that fills the gap, round-trips
        // bit-identically through the current serialisation.
        let mut merged = migrated;
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = merged.meta.block_fingerprint.clone();
        sweep.calls.insert(
            KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 100,
                n: 100,
            },
            1.0 / 7.0, // not exactly representable: a real bit-identity test
        );
        sweep.calls.insert(
            KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 100,
                n: 100,
            },
            3.0 / 7.0,
        );
        sweep.calls.insert(
            KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 100,
                n: 100,
            },
            2.0 / 3.0,
        );
        sweep.calls.insert(
            KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 100,
                n: 100,
            },
            5.0 / 9.0,
        );
        sweep.calls.insert(
            KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 100,
            },
            1.0 / 11.0,
        );
        sweep.calls.insert(KernelOp::Getrf { n: 100 }, 1.0 / 17.0);
        sweep
            .calls
            .insert(KernelOp::Qr { m: 100, n: 100 }, 1.0 / 19.0);
        merged.merge_from(&sweep).unwrap();
        assert!(merged.missing_kernels().is_empty());
        let text = merged.to_json();
        assert!(text.contains(&format!("\"version\": {STORE_FORMAT_VERSION}")));
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "v1→v4 migration must round-trip");
        let mut calls = back.calls;
        let t = calls
            .lookup(&KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 100,
                n: 100,
            })
            .unwrap();
        assert_eq!(t.to_bits(), (1.0f64 / 7.0).to_bits());
        let tr = calls
            .lookup(&KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 100,
                n: 100,
            })
            .unwrap();
        assert_eq!(tr.to_bits(), (3.0f64 / 7.0).to_bits());
    }

    #[test]
    fn v2_documents_load_report_missing_potrf_and_migrate_bit_identically() {
        // Reconstruct what the v2 build wrote: a version-2 document with the
        // triangular kernels but neither POTRF nor the general-solver tier.
        let mut old = sample_store();
        old.calls = CallTimeTable::from_entries(
            old.calls
                .entries()
                .filter(|(op, _)| {
                    !matches!(
                        op,
                        KernelOp::Potrf { .. }
                            | KernelOp::Getrf { .. }
                            | KernelOp::Qr { .. }
                            | KernelOp::Ormqr { .. }
                            | KernelOp::FactorTri { .. }
                            | KernelOp::PivotApply { .. }
                    )
                })
                .map(|(op, s)| (op.clone(), s)),
        );
        let v2_text = old.to_json().replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 2",
        );

        // It loads under the current build with its triangular coverage
        // intact...
        let migrated = CalibrationStore::from_json(&v2_text).unwrap();
        assert_eq!(migrated.calls.len(), old.calls.len());
        let mut calls_check = migrated.calls.clone();
        assert_eq!(
            calls_check.lookup(&KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 64,
                n: 16,
            }),
            Some(9.5e-5),
            "v2 triangular coverage must survive the migration"
        );
        // ...reports the factorisation sweep kernels as the coverage gap...
        assert_eq!(migrated.missing_kernels(), vec!["potrf", "getrf", "qr"]);

        // ...and after a factorisation sweep fills it, the migration
        // round-trips bit-identically.
        let mut merged = migrated;
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = merged.meta.block_fingerprint.clone();
        sweep.calls.insert(
            KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 72,
            },
            1.0 / 13.0, // not exactly representable: a real bit-identity test
        );
        sweep.calls.insert(KernelOp::Getrf { n: 72 }, 1.0 / 23.0);
        sweep
            .calls
            .insert(KernelOp::Qr { m: 72, n: 72 }, 1.0 / 29.0);
        merged.merge_from(&sweep).unwrap();
        assert!(merged.missing_kernels().is_empty());
        let text = merged.to_json();
        assert!(text.contains(&format!("\"version\": {STORE_FORMAT_VERSION}")));
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "v2→v4 migration must round-trip");
        let mut calls = back.calls;
        let t = calls
            .lookup(&KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 72,
            })
            .unwrap();
        assert_eq!(t.to_bits(), (1.0f64 / 13.0).to_bits());
    }

    #[test]
    fn v3_documents_load_report_missing_getrf_and_qr_and_migrate_bit_identically() {
        // Reconstruct what the v3 build wrote: a version-3 document with
        // everything up to POTRF but none of the general-solver tier.
        let mut old = sample_store();
        old.calls = CallTimeTable::from_entries(
            old.calls
                .entries()
                .filter(|(op, _)| {
                    !matches!(
                        op,
                        KernelOp::Getrf { .. }
                            | KernelOp::Qr { .. }
                            | KernelOp::Ormqr { .. }
                            | KernelOp::FactorTri { .. }
                            | KernelOp::PivotApply { .. }
                    )
                })
                .map(|(op, s)| (op.clone(), s)),
        );
        let v3_text = old.to_json().replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 3",
        );

        // It loads under the v4 build with its POTRF coverage intact...
        let migrated = CalibrationStore::from_json(&v3_text).unwrap();
        assert_eq!(migrated.calls.len(), old.calls.len());
        let mut calls_check = migrated.calls.clone();
        assert_eq!(
            calls_check.lookup(&KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 72,
            }),
            Some(4.75e-4),
            "v3 POTRF coverage must survive the migration"
        );
        // ...reports GETRF and QR (and only those) as the coverage gap...
        assert_eq!(migrated.missing_kernels(), vec!["getrf", "qr"]);

        // ...and after a general-factorisation sweep fills it, the v3→v4
        // migration round-trips bit-identically.
        let mut merged = migrated;
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = merged.meta.block_fingerprint.clone();
        // Not exactly representable: real bit-identity tests.
        sweep.calls.insert(KernelOp::Getrf { n: 88 }, 1.0 / 31.0);
        sweep
            .calls
            .insert(KernelOp::Qr { m: 88, n: 88 }, 1.0 / 37.0);
        sweep
            .calls
            .insert(KernelOp::Ormqr { m: 88, n: 88, k: 4 }, 1.0 / 41.0);
        sweep.calls.insert(
            KernelOp::FactorTri {
                uplo: Uplo::Lower,
                n: 88,
            },
            1.0 / 43.0,
        );
        sweep.calls.insert(
            KernelOp::PivotApply {
                side: Side::Left,
                m: 88,
                n: 4,
            },
            1.0 / 47.0,
        );
        merged.merge_from(&sweep).unwrap();
        assert!(merged.missing_kernels().is_empty());
        let text = merged.to_json();
        assert!(text.contains(&format!("\"version\": {STORE_FORMAT_VERSION}")));
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "v3→v4 migration must round-trip");
        let mut calls = back.calls;
        for (op, expected) in [
            (KernelOp::Getrf { n: 88 }, 1.0f64 / 31.0),
            (KernelOp::Qr { m: 88, n: 88 }, 1.0 / 37.0),
            (KernelOp::Ormqr { m: 88, n: 88, k: 4 }, 1.0 / 41.0),
            (
                KernelOp::FactorTri {
                    uplo: Uplo::Lower,
                    n: 88,
                },
                1.0 / 43.0,
            ),
            (
                KernelOp::PivotApply {
                    side: Side::Left,
                    m: 88,
                    n: 4,
                },
                1.0 / 47.0,
            ),
        ] {
            let t = calls.lookup(&op).unwrap();
            assert_eq!(t.to_bits(), expected.to_bits(), "{op}");
        }
    }

    fn sample_tuned() -> TunedConfig {
        TunedConfig {
            config: BlockConfig {
                mc: 192,
                kc: 384,
                nc: 2048,
                tri_block: 96,
                tile: TileVariant::T8x8,
                parallel: true,
                parallel_flop_threshold: 1 << 21,
            },
            // Not exactly representable: a real bit-identity test.
            gflops: 100.0 / 7.0,
        }
    }

    #[test]
    fn v4_documents_load_without_tuned_config_and_migrate_bit_identically() {
        // Reconstruct what the v4 build wrote: full call coverage, no
        // `tuned` section.
        let old = sample_store();
        assert!(old.tuned.is_none());
        let v4_text = old.to_json().replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 4",
        );

        // It loads under the v5 build with no tuned config and full
        // coverage...
        let migrated = CalibrationStore::from_json(&v4_text).unwrap();
        assert_eq!(migrated.calls.len(), old.calls.len());
        assert!(migrated.tuned.is_none());
        assert!(migrated.tuned_block_config().is_none());
        assert!(migrated.missing_kernels().is_empty());

        // ...the resave upgrades only the version number, bit-for-bit...
        let resaved = migrated.to_json();
        assert_eq!(
            resaved,
            v4_text.replace(
                "\"version\": 4",
                &format!("\"version\": {STORE_FORMAT_VERSION}")
            ),
            "v4→v5 migration must only bump the version"
        );

        // ...and after merging an autotune sweep the tuned config round-trips
        // bit-identically.
        let mut merged = migrated;
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = merged.meta.block_fingerprint.clone();
        sweep.tuned = Some(sample_tuned());
        merged.merge_from(&sweep).unwrap();
        assert_eq!(merged.tuned, Some(sample_tuned()));
        let text = merged.to_json();
        assert!(text.contains(&format!("\"version\": {STORE_FORMAT_VERSION}")));
        assert!(text.contains("\"tuned\""));
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "v4→v5 migration must round-trip");
        let tuned = back.tuned.unwrap();
        assert_eq!(tuned.config, sample_tuned().config);
        assert_eq!(tuned.gflops.to_bits(), sample_tuned().gflops.to_bits());
    }

    #[test]
    fn v5_documents_load_without_backend_tables_and_migrate_bit_identically() {
        // Reconstruct what the v5 build wrote: full call coverage, a tuned
        // section, no `backends` section.
        let mut old = sample_store();
        old.tuned = Some(sample_tuned());
        assert!(old.backends.is_empty());
        let v5_text = old.to_json().replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 5",
        );

        // It loads under the v6 build with no per-backend tables and full
        // native coverage...
        let migrated = CalibrationStore::from_json(&v5_text).unwrap();
        assert_eq!(migrated.calls.len(), old.calls.len());
        assert!(migrated.backends.is_empty());
        assert_eq!(migrated.backend_names(), vec!["native".to_string()]);
        assert!(migrated.missing_kernels().is_empty());

        // ...the resave upgrades only the version number, bit-for-bit...
        let resaved = migrated.to_json();
        assert_eq!(
            resaved,
            v5_text.replace(
                "\"version\": 5",
                &format!("\"version\": {STORE_FORMAT_VERSION}")
            ),
            "v5→v6 migration must only bump the version"
        );

        // ...and after merging a reference-backend sweep the new section
        // round-trips while the native tables stay untouched.
        let mut merged = migrated;
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = merged.meta.block_fingerprint.clone();
        let (_, calls) = sweep.backend_tables_mut("reference");
        let op = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 24,
            n: 24,
            k: 24,
        };
        calls.insert(op.clone(), 3.25e-6);
        merged.merge_from(&sweep).unwrap();
        assert_eq!(merged.calls.len(), old.calls.len());
        assert_eq!(
            merged.backend_names(),
            vec!["native".to_string(), "reference".to_string()]
        );
        let text = merged.to_json();
        assert!(text.contains("\"backends\""));
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "v5→v6 migration must round-trip");
        assert_eq!(
            back.backend_calls("reference").and_then(|t| t.get(&op)),
            Some(3.25e-6)
        );
    }

    #[test]
    fn tuned_config_round_trips_bit_identically() {
        let mut store = sample_store();
        store.tuned = Some(sample_tuned());
        let text = store.to_json();
        let back = CalibrationStore::from_json(&text).unwrap();
        let tuned = back.tuned.as_ref().unwrap();
        assert_eq!(tuned.config, sample_tuned().config);
        assert_eq!(
            tuned.config.fingerprint(),
            sample_tuned().config.fingerprint()
        );
        assert_eq!(tuned.gflops.to_bits(), sample_tuned().gflops.to_bits());
        assert_eq!(back.tuned_block_config(), Some(&sample_tuned().config));
        // Serialisation is deterministic: same tuned store, same bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn malformed_tuned_sections_are_rejected() {
        let mut store = sample_store();
        store.tuned = Some(sample_tuned());
        let text = store.to_json();
        let bad_tile = text.replace("\"tile\": \"8x8\"", "\"tile\": \"3x5\"");
        assert!(CalibrationStore::from_json(&bad_tile)
            .unwrap_err()
            .to_string()
            .contains("unknown register tile"));
        let bad_parallel = text.replace("\"parallel\": true", "\"parallel\": 1");
        assert!(CalibrationStore::from_json(&bad_parallel)
            .unwrap_err()
            .to_string()
            .contains("non-boolean"));
    }

    #[test]
    fn merge_keeps_existing_tuned_config_when_sweep_has_none() {
        let mut base = sample_store();
        base.tuned = Some(sample_tuned());
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = base.meta.block_fingerprint.clone();
        base.merge_from(&sweep).unwrap();
        assert_eq!(base.tuned, Some(sample_tuned()));
    }

    #[test]
    fn sideless_legacy_call_entries_parse_as_left_side() {
        // Pre-v6 documents carry no `side` tag on trmm/trsm/laswp entries;
        // strip the tags the current serialiser writes and check the entries
        // land on the left side — the only side those builds could express.
        let store = sample_store();
        let text = store.to_json();
        let mut stripped_lines: Vec<&str> = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i];
            let sided_kernel = line.contains("\"op\": \"trmm\"")
                || line.contains("\"op\": \"trsm\"")
                || line.contains("\"op\": \"laswp\"");
            stripped_lines.push(line);
            if sided_kernel && i + 1 < lines.len() && lines[i + 1].contains("\"side\"") {
                i += 2; // skip the side line
                continue;
            }
            i += 1;
        }
        let legacy = stripped_lines.join("\n").replace(
            &format!("\"version\": {STORE_FORMAT_VERSION}"),
            "\"version\": 5",
        );
        assert!(!legacy.contains("\"op\": \"trmm\",\n      \"side\""));
        let migrated = CalibrationStore::from_json(&legacy).unwrap();
        let mut calls = migrated.calls;
        // The left-side entries are reachable under their sided keys...
        assert_eq!(
            calls.lookup(&KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                m: 80,
                n: 35,
            }),
            Some(3.25e-4)
        );
        assert_eq!(
            calls.lookup(&KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 64,
                n: 16,
            }),
            Some(9.5e-5)
        );
        // ...while the stripped right-side entries collapsed onto left-side
        // keys (their dimensions differ, so they collide with nothing).
        assert_eq!(
            calls.lookup(&KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 30,
                n: 66,
            }),
            None,
            "a legacy document cannot provide right-side coverage"
        );
    }

    #[test]
    fn backends_section_round_trips_and_is_omitted_when_empty() {
        let plain = sample_store();
        assert!(!plain.to_json().contains("\"backends\""));
        let mut store = sample_store();
        {
            let (profiles, calls) = store.backend_tables_mut("reference");
            profiles.push(SquareProfile::new("gemm", vec![50, 150], vec![0.11, 0.21]));
            calls.insert(
                KernelOp::Gemm {
                    transa: Trans::No,
                    transb: Trans::No,
                    m: 50,
                    n: 50,
                    k: 50,
                },
                1.0 / 53.0, // not exactly representable: a real bit-identity test
            );
            calls.insert(
                KernelOp::Trsm {
                    side: Side::Right,
                    uplo: Uplo::Lower,
                    trans: Trans::No,
                    m: 20,
                    n: 50,
                },
                1.0 / 59.0,
            );
        }
        let text = store.to_json();
        assert!(text.contains("\"backends\""));
        let back = CalibrationStore::from_json(&text).unwrap();
        assert_eq!(back.backend_names(), vec!["native", "reference"]);
        let reference = back.backend_calls("reference").unwrap().clone();
        let mut reference = reference;
        assert_eq!(
            reference
                .lookup(&KernelOp::Gemm {
                    transa: Trans::No,
                    transb: Trans::No,
                    m: 50,
                    n: 50,
                    k: 50,
                })
                .unwrap()
                .to_bits(),
            (1.0f64 / 53.0).to_bits()
        );
        // The native tables are reachable through the same accessor.
        assert_eq!(
            back.backend_calls("native").unwrap().len(),
            sample_store().calls.len()
        );
        // Per-backend coverage distinguishes the sides.
        let cov = back.backend_coverage("reference");
        assert_eq!(cov.get("trsm_r"), Some(&1));
        assert!(back.backend_missing_kernels("reference").contains(&"trsm"));
        // Deterministic bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn merging_stores_unions_backend_sections() {
        let mut base = sample_store();
        {
            let (profiles, calls) = base.backend_tables_mut("reference");
            profiles.push(SquareProfile::new("gemm", vec![100], vec![0.1]));
            calls.insert(KernelOp::Getrf { n: 32 }, 4.0e-4);
        }
        let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
        sweep.meta.block_fingerprint = base.meta.block_fingerprint.clone();
        {
            let (profiles, calls) = sweep.backend_tables_mut("reference");
            profiles.push(SquareProfile::new("gemm", vec![100, 200], vec![0.15, 0.2]));
            calls.insert(KernelOp::Getrf { n: 32 }, 3.5e-4); // fresher wins
            calls.insert(KernelOp::Getrf { n: 64 }, 9.0e-4);
        }
        base.merge_from(&sweep).unwrap();
        let mut merged = base.backend_calls("reference").unwrap().clone();
        assert_eq!(merged.lookup(&KernelOp::Getrf { n: 32 }), Some(3.5e-4));
        assert_eq!(merged.lookup(&KernelOp::Getrf { n: 64 }), Some(9.0e-4));
        let profile = &base.backend_profiles("reference").unwrap()[0];
        assert_eq!(profile.sizes, vec![100, 200]);
        assert_eq!(profile.efficiencies, vec![0.15, 0.2]);
    }
}
