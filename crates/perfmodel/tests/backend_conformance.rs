//! Backend conformance suite: every registered [`Backend`] must agree with
//! the native blocked kernels numerically, execute degenerate shapes, be
//! honest about what it supports, and be bit-deterministic. The
//! `backend_conformance_suite!` macro stamps the whole suite out once per
//! backend, so a future third implementation gets the checks by adding one
//! line.

use lamb_expr::KernelOp;
use lamb_matrix::ops::max_abs_diff;
use lamb_matrix::{Side, Trans, Uplo};
use lamb_perfmodel::calibrate::{single_call_algorithm, square_ops};
use lamb_perfmodel::{Backend, MeasuredExecutor, NativeBackend, ReferenceBackend};
use std::sync::Arc;

/// The sided multiplication-family ops plus every factorisation, at
/// non-square shapes that expose row/column confusions.
fn conformance_ops() -> Vec<KernelOp> {
    vec![
        KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::Yes,
            m: 13,
            n: 9,
            k: 17,
        },
        KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n: 11,
            k: 7,
        },
        KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m: 12,
            n: 8,
        },
        KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Lower,
            m: 8,
            n: 12,
        },
        KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 10,
            n: 14,
        },
        KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            m: 14,
            n: 10,
        },
        KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 9,
            n: 13,
        },
        KernelOp::Trsm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 13,
            n: 9,
        },
        KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 15,
        },
        KernelOp::Getrf { n: 15 },
        KernelOp::Qr { m: 18, n: 6 },
    ]
}

/// Degenerate shapes: single rows/columns and 1x1 operands must execute
/// (they exercise every loop boundary at once).
fn degenerate_ops() -> Vec<KernelOp> {
    vec![
        KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 1,
            n: 1,
            k: 1,
        },
        KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 1,
            n: 3,
        },
        KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 1,
            n: 4,
        },
        KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Lower,
            m: 4,
            n: 1,
        },
        KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 1,
        },
    ]
}

fn executor_with(backend: Arc<dyn Backend>) -> MeasuredExecutor {
    MeasuredExecutor::quick()
        .with_seed(11)
        .with_backend(backend)
}

macro_rules! backend_conformance_suite {
    ($suite:ident, $backend:expr) => {
        mod $suite {
            use super::*;

            #[test]
            fn agrees_with_the_native_backend_numerically() {
                let native = executor_with(Arc::new(NativeBackend));
                let tested = executor_with(Arc::new($backend));
                for op in conformance_ops() {
                    let alg = single_call_algorithm(op.clone());
                    let expected = native.compute_result(&alg);
                    let got = tested.compute_result(&alg);
                    let diff = max_abs_diff(&expected, &got).unwrap();
                    assert!(diff < 1e-9, "{}: differs by {diff}", op.mnemonic());
                }
            }

            #[test]
            fn executes_degenerate_shapes() {
                let exec = executor_with(Arc::new($backend));
                for op in degenerate_ops() {
                    let alg = single_call_algorithm(op.clone());
                    let out = exec.compute_result(&alg);
                    assert_eq!(out.shape(), op.output_shape(), "{}", op.mnemonic());
                }
            }

            #[test]
            fn supports_is_honest_over_the_sweep() {
                // Every op the backend claims to support must actually run;
                // the calibration sweep relies on this.
                let backend: Arc<dyn Backend> = Arc::new($backend);
                let exec = executor_with(Arc::clone(&backend));
                for op in square_ops(12).into_iter().chain(conformance_ops()) {
                    assert!(
                        backend.supports(&op),
                        "{}: claims no support",
                        op.mnemonic()
                    );
                    let alg = single_call_algorithm(op.clone());
                    let out = exec.compute_result(&alg);
                    assert_eq!(out.shape(), op.output_shape(), "{}", op.mnemonic());
                }
            }

            #[test]
            fn repeated_execution_is_bit_deterministic() {
                let exec = executor_with(Arc::new($backend));
                for op in conformance_ops() {
                    let alg = single_call_algorithm(op.clone());
                    let first = exec.compute_result(&alg);
                    let second = exec.compute_result(&alg);
                    assert_eq!(
                        max_abs_diff(&first, &second).unwrap(),
                        0.0,
                        "{}: nondeterministic",
                        op.mnemonic()
                    );
                }
            }

            #[test]
            fn reports_a_nonempty_registered_name() {
                let backend: Arc<dyn Backend> = Arc::new($backend);
                assert!(!backend.name().is_empty());
                assert!(
                    lamb_perfmodel::backend_by_name(backend.name()).is_some(),
                    "`{}` is not reachable by name",
                    backend.name()
                );
            }
        }
    };
}

backend_conformance_suite!(native, NativeBackend);
backend_conformance_suite!(reference, ReferenceBackend);
