//! Batched planning: many expressions, one warm calibration, aggregate
//! statistics.
//!
//! The single-expression [`Planner`] answers "which algorithm
//! should evaluate *this* instance?". Production traffic asks a different
//! question: given thousands of expression instances, plan them all, as fast
//! as possible, against calibration data that was paid for **once**. That is
//! this module:
//!
//! * [`BatchRequest`] — one parsed expression plus its dimension tuple
//!   (parsed from text lines like `A*A^T*B 80 514 768`);
//! * [`BatchPlanner`] — a reusable builder holding the policy, executor
//!   factory and the shared, sharded prediction cache, optionally
//!   warm-started from a [`CalibrationStore`];
//! * [`BatchPlanner::plan_batch`] — fans the requests out across rayon
//!   workers (one executor per worker, results in input order) and returns
//!   per-request [`Plan`]s plus a [`BatchStats`] aggregate: cache hit rate,
//!   total predicted time of the chosen algorithms versus the FLOP-optimal
//!   ones, and the predicted-anomaly count.
//!
//! Because the deterministic executors key isolated-call benchmarks on the
//! call's timing key alone, batch results are independent of worker count
//! and of whether the cache started cold or warm — a warm start only makes
//! them *faster*.

use crate::cache::{CachingExecutor, PredictionCache};
use crate::factor_cache::{effective_flops, FactorCache, ReuseAwareExecutor};
use crate::plan::{Plan, PlanError};
use crate::planner::Planner;
use lamb_expr::{cacheable_identities, ParseError, TreeExpression};
use lamb_perfmodel::{CalibrationStore, CallTimeTable, Executor, FactorStore, SimulatedExecutor};
use lamb_select::{MinPredictedTime, SelectionPolicy, Strategy};
use rayon::prelude::*;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One unit of batch work: a parsed expression and its instance dimensions.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The expression text the request was parsed from (used in reports).
    pub text: String,
    /// The parsed, dimension-parameterised expression.
    pub expr: TreeExpression,
    /// The instance's dimension tuple.
    pub dims: Vec<usize>,
}

/// Why a batch-request line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchParseError {
    /// 1-based line number within the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BatchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BatchParseError {}

impl BatchRequest {
    /// Build a request from an already parsed expression.
    ///
    /// # Errors
    ///
    /// Rejects a dimension tuple whose length does not match the expression.
    pub fn new(expr: TreeExpression, dims: Vec<usize>) -> Result<Self, String> {
        use lamb_expr::Expression;
        if dims.len() != expr.num_dims() {
            return Err(format!(
                "`{}` needs {} dimension sizes, got {}",
                expr.name(),
                expr.num_dims(),
                dims.len()
            ));
        }
        Ok(BatchRequest {
            text: expr.name(),
            expr,
            dims,
        })
    }

    /// Parse one whitespace-separated line: an expression followed by its
    /// dimension sizes, e.g. `A*A^T*B 80 514 768`.
    ///
    /// # Errors
    ///
    /// Reports unparsable expressions, non-numeric or zero dimensions, and
    /// dimension tuples of the wrong length (all with `line_number`).
    pub fn parse_line(line: &str, line_number: usize) -> Result<Self, BatchParseError> {
        let err = |message: String| BatchParseError {
            line: line_number,
            message,
        };
        let mut tokens = line.split_whitespace();
        let text = tokens
            .next()
            .ok_or_else(|| err("empty request line".into()))?;
        let expr = TreeExpression::parse(text)
            .map_err(|e: ParseError| err(format!("cannot parse `{text}`: {e}")))?;
        let dims: Vec<usize> = tokens
            .map(|t| {
                t.parse::<usize>()
                    .map_err(|_| err(format!("invalid dimension `{t}`")))
                    .and_then(|d| {
                        if d == 0 {
                            Err(err("dimension sizes must be positive".into()))
                        } else {
                            Ok(d)
                        }
                    })
            })
            .collect::<Result<_, _>>()?;
        BatchRequest::new(expr, dims).map_err(err)
    }

    /// Parse a whole request file: one request per line, blank lines and
    /// `#`-comments skipped.
    ///
    /// # Errors
    ///
    /// The first offending line aborts the parse (a batch with silently
    /// dropped requests would misreport coverage).
    pub fn parse_file(contents: &str) -> Result<Vec<Self>, BatchParseError> {
        contents
            .lines()
            .enumerate()
            .filter(|(_, line)| {
                let trimmed = line.trim();
                !trimmed.is_empty() && !trimmed.starts_with('#')
            })
            .map(|(i, line)| BatchRequest::parse_line(line, i + 1))
            .collect()
    }
}

/// Aggregate statistics of one [`BatchPlanner::plan_batch`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Requests submitted.
    pub requests: usize,
    /// Requests that produced a [`Plan`].
    pub planned: usize,
    /// Requests that failed (their `Err` is in the results vector).
    pub failed: usize,
    /// Instances whose FLOP-minimal algorithm is *predicted* to be more than
    /// `threshold` slower than the predicted-fastest algorithm — the paper's
    /// anomaly definition, evaluated on predictions.
    pub predicted_anomalies: usize,
    /// Prediction-cache hits during this batch.
    pub cache_hits: usize,
    /// Prediction-cache misses (fresh benchmarks) during this batch.
    pub cache_misses: usize,
    /// Distinct timing keys in the cache after the batch.
    pub distinct_calls: usize,
    /// Sum over planned instances of the predicted time of the *chosen*
    /// algorithm, in seconds.
    pub chosen_predicted_seconds: f64,
    /// Sum over planned instances of the predicted time of the FLOP-minimal
    /// algorithm, in seconds — what a pure FLOP discriminant would pay.
    pub flop_optimal_predicted_seconds: f64,
    /// Wall-clock duration of the batch, in seconds.
    pub elapsed_seconds: f64,
}

impl BatchStats {
    /// Cache hits over total cache accesses (0 when nothing was accessed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Planned expressions per wall-clock second.
    #[must_use]
    pub fn expressions_per_second(&self) -> f64 {
        if self.elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.planned as f64 / self.elapsed_seconds
        }
    }

    /// Predicted seconds saved versus always choosing the FLOP-minimal
    /// algorithm (non-negative for the predicted-time policy).
    #[must_use]
    pub fn predicted_seconds_saved(&self) -> f64 {
        self.flop_optimal_predicted_seconds - self.chosen_predicted_seconds
    }
}

/// The outcome of a batch: per-request results (input order) and aggregates.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per request: the plan, or why it failed.
    pub results: Vec<Result<Plan, PlanError>>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// The successfully planned requests, in input order.
    pub fn plans(&self) -> impl Iterator<Item = &Plan> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// Plans whole slices of parsed expressions against one shared, sharded
/// prediction cache. The builder mirrors [`Planner`]; the default policy is
/// `MinPredictedTime`, because batch serving exists precisely to exploit
/// measured kernel performance.
///
/// ```
/// use lamb_plan::{BatchPlanner, BatchRequest};
///
/// // One request per line; `#` comments and blank lines are skipped. The
/// // second line is the paper's Figure-11 anomaly instance.
/// let file = "A*B*C*D 331 279 338 854 427\n# comment\nA*A^T*B 80 514 768\n";
/// let requests = BatchRequest::parse_file(file).unwrap();
/// let outcome = BatchPlanner::new().plan_batch(&requests);
/// assert_eq!(outcome.results.len(), 2);
/// assert_eq!(outcome.stats.planned, 2);
/// assert_eq!(outcome.stats.predicted_anomalies, 1); // A*A^T*B at (80,514,768)
/// ```
pub struct BatchPlanner {
    policy: Arc<dyn SelectionPolicy>,
    factory: Arc<dyn Fn() -> Box<dyn Executor> + Send + Sync>,
    threshold: f64,
    top_k: Option<usize>,
    cache: Arc<PredictionCache>,
    use_cse: bool,
    factor_cache: Option<Arc<FactorCache>>,
}

impl Default for BatchPlanner {
    fn default() -> Self {
        BatchPlanner::new()
    }
}

impl BatchPlanner {
    /// A batch planner with the defaults: `MinPredictedTime` policy, the
    /// paper-like simulated executor, the 10% anomaly threshold, a cold
    /// cache, CSE enabled, no factor cache, and no enumeration cap.
    #[must_use]
    pub fn new() -> Self {
        BatchPlanner {
            policy: Arc::new(MinPredictedTime),
            factory: Arc::new(|| Box::new(SimulatedExecutor::paper_like())),
            threshold: 0.10,
            top_k: None,
            cache: Arc::new(PredictionCache::new()),
            use_cse: true,
            factor_cache: None,
        }
    }

    /// Enable or disable common-subexpression elimination over every
    /// request's enumerated algorithms (on by default; `--no-cse` ablation).
    #[must_use]
    pub fn cse(mut self, enabled: bool) -> Self {
        self.use_cse = enabled;
        self
    }

    /// Attach a [`FactorCache`] shared across the whole batch: after the
    /// parallel planning pass, plans are re-scored in input order against
    /// the factors earlier requests computed, so repeated solves against the
    /// same operand are steered onto shared-factor algorithms. Off by
    /// default — without a factor cache every request plans independently
    /// and batch results are bit-identical across runs and worker counts.
    #[must_use]
    pub fn factor_cache(mut self, cache: Arc<FactorCache>) -> Self {
        self.factor_cache = Some(cache);
        self
    }

    /// Identities resident in the attached factor cache (0 when factor
    /// reuse is disabled).
    #[must_use]
    pub fn factor_cache_len(&self) -> usize {
        self.factor_cache.as_ref().map_or(0, |fc| fc.len())
    }

    /// Use `policy` to choose among each request's algorithms.
    #[must_use]
    pub fn policy(mut self, policy: impl SelectionPolicy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// Use the built-in policy named by `strategy`.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.policy = Arc::from(strategy.to_policy());
        self
    }

    /// Time algorithms with executors built by `factory` (one per worker).
    #[must_use]
    pub fn executor_factory(
        mut self,
        factory: impl Fn() -> Box<dyn Executor> + Send + Sync + 'static,
    ) -> Self {
        self.factory = Arc::new(factory);
        self
    }

    /// Anomaly time-score threshold (paper: 10% / 5%).
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Keep only the `k` FLOP-cheapest algorithms per request (essential for
    /// long chains, whose algorithm count grows factorially).
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k.max(1));
        self
    }

    /// Warm-start the shared cache from a persisted calibration store. When
    /// the store carries an autotuned block configuration
    /// ([`CalibrationStore::tuned_block_config`]), pair this with an
    /// [`BatchPlanner::executor_factory`] that builds its measured executors
    /// under that configuration, so cached timings and fresh benchmarks
    /// describe the same blocking.
    #[must_use]
    pub fn with_store(self, store: &CalibrationStore) -> Self {
        self.cache.preload(&store.calls);
        self
    }

    /// Share an existing cache (e.g. with single-expression [`Planner`]s).
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<PredictionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// `(hits, misses)` of the shared prediction cache since construction.
    #[must_use]
    pub fn cache_stats(&self) -> (usize, usize) {
        self.cache.stats()
    }

    /// Export the cache contents (preloaded plus newly benchmarked calls),
    /// e.g. to merge back into a calibration store.
    #[must_use]
    pub fn snapshot_cache(&self) -> CallTimeTable {
        self.cache.snapshot()
    }

    /// The [`Planner`] this batch planner applies to one request.
    fn planner_for<'e>(&self, expr: &'e TreeExpression) -> Planner<'e> {
        let factory = Arc::clone(&self.factory);
        let mut planner = Planner::for_expression(expr)
            .shared_policy(Arc::clone(&self.policy))
            .shared_cache(Arc::clone(&self.cache))
            .cse(self.use_cse)
            .threshold(self.threshold)
            .executor_factory(move || factory());
        if let Some(k) = self.top_k {
            planner = planner.top_k(k);
        }
        planner
    }

    /// Plan every request, fanning out across rayon workers: the slice is
    /// split into one contiguous chunk per worker, each worker builds one
    /// executor, and all workers share the sharded prediction cache. Results
    /// come back in input order; an invalid request yields its own `Err`
    /// without failing the rest.
    ///
    /// The returned [`BatchStats`] cover *this* call: cache hits/misses are
    /// deltas against the cache's counters at entry, so a warm-started cache
    /// reports its preloaded entries as hits.
    #[must_use]
    pub fn plan_batch(&self, requests: &[BatchRequest]) -> BatchOutcome {
        let start = Instant::now();
        let (hits_before, misses_before) = self.cache.stats();
        let mut results: Vec<Result<Plan, PlanError>> = if requests.is_empty() {
            Vec::new()
        } else {
            let workers = rayon::current_num_threads().clamp(1, requests.len());
            let chunk_size = requests.len().div_ceil(workers);
            let spans: Vec<(usize, usize)> = (0..requests.len())
                .step_by(chunk_size)
                .map(|lo| (lo, (lo + chunk_size).min(requests.len())))
                .collect();
            let per_chunk: Vec<Vec<Result<Plan, PlanError>>> = spans
                .into_par_iter()
                .map(|(lo, hi)| {
                    let mut executor = (self.factory)();
                    requests[lo..hi]
                        .iter()
                        .map(|req| {
                            self.planner_for(&req.expr)
                                .plan_with(&req.dims, executor.as_mut())
                        })
                        .collect()
                })
                .collect();
            per_chunk.into_iter().flatten().collect()
        };
        if let Some(fc) = &self.factor_cache {
            self.rescore_with_factor_reuse(fc, &mut results);
        }
        let elapsed_seconds = start.elapsed().as_secs_f64();
        let (hits_after, misses_after) = self.cache.stats();

        let mut stats = BatchStats {
            requests: requests.len(),
            planned: 0,
            failed: 0,
            predicted_anomalies: 0,
            cache_hits: hits_after - hits_before,
            cache_misses: misses_after - misses_before,
            distinct_calls: self.cache.len(),
            chosen_predicted_seconds: 0.0,
            flop_optimal_predicted_seconds: 0.0,
            elapsed_seconds,
        };
        for result in &results {
            let Ok(plan) = result else {
                stats.failed += 1;
                continue;
            };
            stats.planned += 1;
            if let Some(chosen) = plan.chosen_score().predicted_seconds {
                stats.chosen_predicted_seconds += chosen;
            }
            if let Some(flop_optimal) = plan.flop_optimal_score().predicted_seconds {
                stats.flop_optimal_predicted_seconds += flop_optimal;
            }
            if plan.predicted_anomaly() == Some(true) {
                stats.predicted_anomalies += 1;
            }
        }
        BatchOutcome { results, stats }
    }

    /// The factor-reuse pass: walk the planned results *sequentially, in
    /// input order* (so the outcome is independent of worker count), re-score
    /// each plan against the residency the earlier requests established,
    /// let the policy re-select, and register the chosen algorithm's factors
    /// for the requests that follow.
    fn rescore_with_factor_reuse(
        &self,
        fc: &Arc<FactorCache>,
        results: &mut [Result<Plan, PlanError>],
    ) {
        let store: &dyn FactorStore = fc.as_ref();
        let mut executor = (self.factory)();
        for result in results.iter_mut() {
            let Ok(plan) = result.as_mut() else { continue };
            // Fast path: a plan none of whose candidates can reuse anything
            // resident keeps its phase-one scores untouched.
            let any_resident = plan.algorithms.iter().any(|alg| {
                cacheable_identities(alg)
                    .iter()
                    .any(|(_, _, identity)| store.contains(identity))
            });
            if any_resident {
                let mut caching = CachingExecutor::new(executor.as_mut(), &self.cache);
                let mut reuse = ReuseAwareExecutor::new(&mut caching, store);
                for index in 0..plan.algorithms.len() {
                    let rescored_flops = effective_flops(&plan.algorithms[index], store);
                    let rescored_seconds = plan.scores[index].predicted_seconds.map(|_| {
                        reuse
                            .predict_from_isolated_calls(&plan.algorithms[index])
                            .seconds
                    });
                    plan.scores[index].flops = rescored_flops;
                    plan.scores[index].predicted_seconds = rescored_seconds;
                }
                if let Ok(chosen) = self.policy.select(&plan.algorithms, &mut reuse) {
                    plan.chosen = chosen;
                }
            }
            for (_, _, identity) in cacheable_identities(&plan.algorithms[plan.chosen]) {
                store.note(&identity);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_select::MinFlops;

    fn requests() -> Vec<BatchRequest> {
        BatchRequest::parse_file(
            "# mixed batch: chains and Gram products\n\
             A*B*C*D 331 279 338 854 427\n\
             A*A^T*B 80 514 768\n\
             A*A^T*B 1000 1000 1000\n\
             A*B*B^T 300 700 900\n\
             \n\
             A*B*C*D*E 60 20 90 30 120 40\n",
        )
        .unwrap()
    }

    #[test]
    fn request_lines_parse_and_validate() {
        let reqs = requests();
        assert_eq!(reqs.len(), 5);
        assert_eq!(reqs[0].dims, vec![331, 279, 338, 854, 427]);
        assert_eq!(reqs[1].text, "A*A^T*B");

        let err = BatchRequest::parse_line("A*B 10", 3).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("needs 3 dimension sizes"));
        assert!(BatchRequest::parse_line("A*B 10 0 20", 1)
            .unwrap_err()
            .message
            .contains("positive"));
        assert!(BatchRequest::parse_line("A*)B 1 2 3", 1)
            .unwrap_err()
            .message
            .contains("cannot parse"));
        assert!(BatchRequest::parse_line("A*B ten 20 30", 1)
            .unwrap_err()
            .message
            .contains("invalid dimension"));
        assert!(BatchRequest::parse_file("A*B 10 20 30\nbogus*)\n").is_err());
    }

    #[test]
    fn batch_results_keep_input_order_and_count_anomalies() {
        let reqs = requests();
        let outcome = BatchPlanner::new().plan_batch(&reqs);
        assert_eq!(outcome.results.len(), 5);
        assert_eq!(outcome.stats.planned, 5);
        assert_eq!(outcome.stats.failed, 0);
        for (req, result) in reqs.iter().zip(&outcome.results) {
            let plan = result.as_ref().unwrap();
            assert_eq!(plan.dims, req.dims);
        }
        // The paper's Figure-11 instance is a predicted anomaly; the large
        // square A*A^T*B instance is not.
        assert!(outcome.stats.predicted_anomalies >= 1);
        assert!(outcome.stats.predicted_anomalies < 5);
        // The predicted-time policy never does worse than the FLOP policy on
        // its own predictions.
        assert!(outcome.stats.predicted_seconds_saved() >= 0.0);
        assert!(outcome.stats.chosen_predicted_seconds > 0.0);
        assert!(outcome.stats.elapsed_seconds > 0.0);
        assert!(outcome.stats.expressions_per_second() > 0.0);
        assert_eq!(outcome.plans().count(), 5);
    }

    #[test]
    fn failures_are_isolated_per_request() {
        let mut reqs = requests();
        reqs[2].dims = vec![10, 20]; // wrong arity, bypassing the constructor
        let outcome = BatchPlanner::new().plan_batch(&reqs);
        assert_eq!(outcome.stats.planned, 4);
        assert_eq!(outcome.stats.failed, 1);
        assert!(outcome.results[2].is_err());
        assert!(outcome.results[3].is_ok());
    }

    #[test]
    fn warm_batches_agree_with_cold_batches_and_stop_benchmarking() {
        let reqs = requests();
        let cold_planner = BatchPlanner::new();
        let cold = cold_planner.plan_batch(&reqs);
        assert!(cold.stats.cache_misses > 0, "a cold cache benchmarks");

        // Build a store from the cold run's cache and warm-start a new batch.
        let mut store = lamb_perfmodel::CalibrationStore::new(
            lamb_perfmodel::MachineModel::paper_xeon_silver_4210(),
            "simulated",
        );
        store.calls = cold_planner.snapshot_cache();
        let warm_planner = BatchPlanner::new().with_store(&store);
        let warm = warm_planner.plan_batch(&reqs);
        assert_eq!(warm.stats.cache_misses, 0, "warm batch must not benchmark");
        assert!(warm.stats.hit_rate() > 0.99);

        for (c, w) in cold.results.iter().zip(&warm.results) {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(c.chosen, w.chosen);
            for (cs, ws) in c.scores.iter().zip(&w.scores) {
                assert_eq!(
                    cs.predicted_seconds.unwrap().to_bits(),
                    ws.predicted_seconds.unwrap().to_bits(),
                    "warm predictions must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn policies_and_top_k_apply_to_every_request() {
        let reqs = BatchRequest::parse_file("A*B*C*D*E*F 60 20 90 30 120 40 70\n").unwrap();
        let outcome = BatchPlanner::new()
            .policy(MinFlops)
            .top_k(4)
            .plan_batch(&reqs);
        let plan = outcome.results[0].as_ref().unwrap();
        assert_eq!(plan.algorithms.len(), 4);
        assert_eq!(plan.policy, "min-flops");
        let min = plan.scores.iter().map(|s| s.flops).min().unwrap();
        assert_eq!(plan.chosen_score().flops, min);
    }

    #[test]
    fn a_factor_cache_steers_later_solves_onto_the_resident_factorisation() {
        use lamb_perfmodel::{Executor as _, MeasuredExecutor, SimpleFactorStore};
        let reqs = BatchRequest::parse_file(
            "S[spd]^-1*B 96 12\n\
             S[spd]^-1*B 96 12\n\
             S[spd]^-1*B 96 12\n\
             S[spd]^-1*B 96 12\n",
        )
        .unwrap();
        let fc = Arc::new(FactorCache::new());
        let planner = BatchPlanner::new().factor_cache(Arc::clone(&fc));
        let outcome = planner.plan_batch(&reqs);
        assert_eq!(outcome.stats.planned, 4);
        assert!(planner.factor_cache_len() > 0, "chosen factors registered");
        let plans: Vec<&Plan> = outcome.plans().collect();
        let first = plans[0].chosen_score().predicted_seconds.unwrap();
        let warm = plans[1].chosen_score().predicted_seconds.unwrap();
        assert!(
            warm < first,
            "later solves against the same operand are predicted cheaper \
             ({warm} vs {first})"
        );
        assert!(
            plans[1].chosen_score().flops < plans[0].chosen_score().flops,
            "effective FLOPs are discounted for the warm requests"
        );
        // Executing the four chosen algorithms against one shared store
        // factors the operand exactly once: 1 POTRF for the whole batch.
        let store = SimpleFactorStore::new();
        let mut exec = MeasuredExecutor::quick();
        let mut potrfs = 0;
        for plan in &plans {
            let (_, report) = exec.execute_algorithm_reusing(plan.chosen_algorithm(), &store);
            potrfs += report.executed("potrf");
        }
        assert_eq!(potrfs, 1, "one factorisation serves the whole batch");
    }

    #[test]
    fn repeated_general_solves_execute_exactly_one_getrf() {
        use lamb_perfmodel::{Executor as _, MeasuredExecutor, SimpleFactorStore};
        let reqs = BatchRequest::parse_file(
            "A^-1*B 72 9\n\
             A^-1*B 72 9\n\
             A^-1*B 72 9\n\
             A^-1*B 72 9\n",
        )
        .unwrap();
        let fc = Arc::new(FactorCache::new());
        let planner = BatchPlanner::new().factor_cache(Arc::clone(&fc));
        let outcome = planner.plan_batch(&reqs);
        assert_eq!(outcome.stats.planned, 4);
        assert!(planner.factor_cache_len() > 0, "LU factors registered");
        // Executing the four chosen algorithms against one shared store
        // pivots and factors the operand exactly once.
        let store = SimpleFactorStore::new();
        let mut exec = MeasuredExecutor::quick();
        let mut getrfs = 0;
        for plan in outcome.plans() {
            let (_, report) = exec.execute_algorithm_reusing(plan.chosen_algorithm(), &store);
            getrfs += report.executed("getrf");
        }
        assert_eq!(getrfs, 1, "one LU factorisation serves the whole batch");
    }

    #[test]
    fn mixed_spd_and_general_factor_identities_never_collide() {
        use lamb_expr::cacheable_identities;
        use lamb_perfmodel::{Executor as _, MeasuredExecutor, SimpleFactorStore};
        use std::collections::HashSet;
        // Same operand name, same dims: only the declared structure (and so
        // the factorisation kind) distinguishes the two families.
        let reqs = BatchRequest::parse_file(
            "A^-1*B 64 9\n\
             A^-1*B 64 9\n\
             A[spd]^-1*B 64 9\n\
             A[spd]^-1*B 64 9\n",
        )
        .unwrap();
        let fc = Arc::new(FactorCache::new());
        let planner = BatchPlanner::new().factor_cache(Arc::clone(&fc));
        let outcome = planner.plan_batch(&reqs);
        assert_eq!(outcome.stats.planned, 4);
        let plans: Vec<&Plan> = outcome.plans().collect();
        let identities = |plan: &Plan| -> HashSet<String> {
            cacheable_identities(plan.chosen_algorithm())
                .into_iter()
                .map(|(_, _, id)| id)
                .collect()
        };
        let lu = identities(plans[0]);
        let chol = identities(plans[2]);
        assert!(lu.iter().any(|i| i.starts_with("getrf(")), "{lu:?}");
        assert!(chol.iter().any(|i| i.starts_with("potrf(")), "{chol:?}");
        assert!(
            lu.is_disjoint(&chol),
            "LU and Cholesky factor identities must never collide: {lu:?} vs {chol:?}"
        );
        // And under one shared store, each family factors exactly once.
        let store = SimpleFactorStore::new();
        let mut exec = MeasuredExecutor::quick();
        let (mut getrfs, mut potrfs) = (0, 0);
        for plan in &plans {
            let (_, report) = exec.execute_algorithm_reusing(plan.chosen_algorithm(), &store);
            getrfs += report.executed("getrf");
            potrfs += report.executed("potrf");
        }
        assert_eq!((getrfs, potrfs), (1, 1));
    }

    #[test]
    fn empty_batches_are_fine() {
        let outcome = BatchPlanner::new().plan_batch(&[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.requests, 0);
        assert_eq!(outcome.stats.hit_rate(), 0.0);
        assert_eq!(outcome.stats.expressions_per_second(), 0.0);
    }
}
