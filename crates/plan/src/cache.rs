//! The planner's shared, memoized prediction cache.
//!
//! Predicting an algorithm's time from isolated-call benchmarks (the paper's
//! Experiment 3, and the `MinPredictedTime` / `Hybrid` policies) repeatedly
//! times the *same* kernel calls: equivalent algorithms of one instance share
//! calls, neighbouring instances of a grid sweep share calls, and every
//! selection consults the same profiles. [`PredictionCache`] memoizes those
//! benchmarks keyed by the exact kernel-call signature — operation, operand
//! dimensions and transposition flags, i.e. the whole
//! [`KernelOp`](lamb_expr::KernelOp) value — behind a mutex, so one cache can
//! be shared by all algorithms, instances and worker threads of a planner.

use lamb_expr::Algorithm;
use lamb_perfmodel::{AlgorithmTiming, CallTimeTable, CallTiming, Executor, MachineModel};
use std::sync::Mutex;

/// A thread-safe memo table of isolated-call benchmark times.
#[derive(Debug, Default)]
pub struct PredictionCache {
    table: Mutex<CallTimeTable>,
}

impl PredictionCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PredictionCache::default()
    }

    /// Time call `index` of `alg` in isolation, reusing the memoised result
    /// when the same kernel-call signature has been benchmarked before.
    ///
    /// The lock is *not* held while the executor runs, so concurrent workers
    /// never serialise on a slow benchmark; two threads may race to benchmark
    /// the same call, in which case both results are identical for the
    /// deterministic executors and the last write wins.
    pub fn cached_isolated_call(
        &self,
        executor: &mut dyn Executor,
        alg: &Algorithm,
        index: usize,
    ) -> f64 {
        let op = &alg.calls[index].op;
        if let Some(t) = self.table.lock().expect("cache poisoned").lookup(op) {
            return t;
        }
        let t = executor.time_isolated_call(alg, index);
        self.table
            .lock()
            .expect("cache poisoned")
            .insert(op.clone(), t);
        t
    }

    /// Predict `alg`'s time as the sum of its (cached) isolated-call
    /// benchmarks — the cached equivalent of
    /// [`Executor::predict_from_isolated_calls`].
    pub fn predict(&self, executor: &mut dyn Executor, alg: &Algorithm) -> AlgorithmTiming {
        let per_call: Vec<CallTiming> = alg
            .calls
            .iter()
            .enumerate()
            .map(|(i, call)| CallTiming {
                index: i,
                label: call.label.clone(),
                flops: call.flops(),
                seconds: self.cached_isolated_call(executor, alg, i),
            })
            .collect();
        AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: per_call.iter().map(|c| c.seconds).sum(),
            per_call,
            flops: alg.flops(),
        }
    }

    /// Number of distinct kernel-call signatures benchmarked so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.lock().expect("cache poisoned").len()
    }

    /// Whether nothing has been benchmarked yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.lock().expect("cache poisoned").is_empty()
    }

    /// `(hits, misses)` counters: how much benchmarking the memoisation
    /// avoided.
    #[must_use]
    pub fn stats(&self) -> (usize, usize) {
        self.table.lock().expect("cache poisoned").stats()
    }
}

/// An [`Executor`] adapter that routes isolated-call benchmarks through a
/// [`PredictionCache`] and passes whole-algorithm executions straight
/// through.
///
/// Selection policies receive this adapter from the planner, so
/// `MinPredictedTime` and `Hybrid` transparently share profile benchmarks
/// across algorithms, instances and planner invocations. Whole-algorithm
/// executions are *not* cached: for measured executors they are genuine
/// timing runs, and for the anomaly classification every instance must be
/// executed.
pub struct CachingExecutor<'a> {
    inner: &'a mut dyn Executor,
    cache: &'a PredictionCache,
}

impl<'a> CachingExecutor<'a> {
    /// Wrap `inner`, memoizing isolated-call timings in `cache`.
    pub fn new(inner: &'a mut dyn Executor, cache: &'a PredictionCache) -> Self {
        CachingExecutor { inner, cache }
    }
}

impl Executor for CachingExecutor<'_> {
    fn name(&self) -> String {
        format!("cached({})", self.inner.name())
    }

    fn machine(&self) -> &MachineModel {
        self.inner.machine()
    }

    fn execute_algorithm(&mut self, alg: &Algorithm) -> AlgorithmTiming {
        self.inner.execute_algorithm(alg)
    }

    fn time_isolated_call(&mut self, alg: &Algorithm, call_index: usize) -> f64 {
        self.cache.cached_isolated_call(self.inner, alg, call_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::enumerate_aatb_algorithms;
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn cached_prediction_equals_uncached_prediction() {
        let cache = PredictionCache::new();
        let mut cached_exec = SimulatedExecutor::paper_like();
        let mut plain_exec = SimulatedExecutor::paper_like();
        for alg in enumerate_aatb_algorithms(80, 514, 768) {
            let cached = cache.predict(&mut cached_exec, &alg);
            let plain = plain_exec.predict_from_isolated_calls(&alg);
            assert_eq!(cached.seconds, plain.seconds, "{}", alg.name);
            assert_eq!(cached.per_call, plain.per_call, "{}", alg.name);
        }
    }

    #[test]
    fn repeated_predictions_hit_the_cache() {
        let cache = PredictionCache::new();
        let mut exec = SimulatedExecutor::paper_like();
        let algs = enumerate_aatb_algorithms(100, 200, 300);
        for alg in &algs {
            cache.predict(&mut exec, alg);
        }
        let (_, misses_first) = cache.stats();
        for alg in &algs {
            cache.predict(&mut exec, alg);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, misses_first, "second pass must not re-benchmark");
        assert!(hits >= algs.iter().map(|a| a.calls.len()).sum::<usize>());
    }

    #[test]
    fn caching_executor_is_transparent_for_whole_algorithm_execution() {
        let cache = PredictionCache::new();
        let mut inner = SimulatedExecutor::paper_like();
        let mut reference = SimulatedExecutor::paper_like();
        let alg = &enumerate_aatb_algorithms(90, 110, 130)[0];
        let mut wrapped = CachingExecutor::new(&mut inner, &cache);
        assert_eq!(
            wrapped.execute_algorithm(alg),
            reference.execute_algorithm(alg)
        );
        assert!(wrapped.name().contains("simulated"));
        assert!(cache.is_empty(), "execution must not touch the cache");
        let _ = wrapped.predict_from_isolated_calls(alg);
        assert_eq!(cache.len(), alg.calls.len());
    }
}
