//! The planner's shared, memoized prediction cache.
//!
//! Predicting an algorithm's time from isolated-call benchmarks (the paper's
//! Experiment 3, and the `MinPredictedTime` / `Hybrid` policies) repeatedly
//! times the *same* kernel calls: equivalent algorithms of one instance share
//! calls, neighbouring instances of a grid sweep share calls, and every
//! selection consults the same profiles. [`PredictionCache`] memoizes those
//! benchmarks keyed by the kernel call's *timing key*
//! ([`KernelOp::timing_key`](lamb_expr::KernelOp::timing_key) — operation and
//! operand dimensions, with timing-irrelevant GEMM transposition flags
//! cleared), so one cache can be shared by all algorithms, instances and
//! worker threads of a planner.
//!
//! The table is **sharded**: entries are distributed over a fixed set of
//! independently locked shards by the hash of their timing key, so the many
//! worker threads of a batched planning run ([`crate::BatchPlanner`],
//! [`crate::Planner::plan_grid`]) do not serialise on a single mutex. A cache
//! can be **warm-started** from a persisted
//! [`CalibrationStore`](lamb_perfmodel::CalibrationStore) via
//! [`PredictionCache::preload`] and exported back with
//! [`PredictionCache::snapshot`].

use lamb_expr::{Algorithm, KernelOp};
use lamb_perfmodel::{AlgorithmTiming, CallTimeTable, CallTiming, Executor, MachineModel};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked shards; a small power of two well above
/// the worker counts rayon uses on typical machines.
const SHARD_COUNT: usize = 16;

/// A thread-safe, sharded memo table of isolated-call benchmark times.
#[derive(Debug)]
pub struct PredictionCache {
    shards: [Mutex<CallTimeTable>; SHARD_COUNT],
}

impl Default for PredictionCache {
    fn default() -> Self {
        PredictionCache {
            shards: std::array::from_fn(|_| Mutex::new(CallTimeTable::new())),
        }
    }
}

impl PredictionCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PredictionCache::default()
    }

    /// A cache warm-started with every entry of `table` (typically the call
    /// table of a loaded calibration store).
    #[must_use]
    pub fn from_table(table: &CallTimeTable) -> Self {
        let cache = PredictionCache::new();
        cache.preload(table);
        cache
    }

    /// The shard responsible for `key` (which must already be a timing key).
    fn shard(&self, key: &KernelOp) -> &Mutex<CallTimeTable> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Insert every entry of `table` (later entries win over earlier ones
    /// with the same timing key). Hit/miss counters are unaffected.
    ///
    /// Entries are canonicalised to their timing key *before* shard routing:
    /// [`cached_isolated_call`](PredictionCache::cached_isolated_call) hashes
    /// the canonical key to pick a shard, so a non-canonical key in a loaded
    /// or merged calibration store (e.g. a transposed GEMM variant) would
    /// otherwise land in a shard the lookups never consult — silently turning
    /// every warm start into a cold re-benchmark.
    pub fn preload(&self, table: &CallTimeTable) {
        for (op, seconds) in table.entries() {
            let key = op.timing_key();
            self.shard(&key)
                .lock()
                .expect("cache poisoned")
                .insert(key, seconds);
        }
    }

    /// Export the merged contents of all shards as one [`CallTimeTable`]
    /// (with fresh hit/miss counters), e.g. to persist newly benchmarked
    /// calls into a calibration store.
    #[must_use]
    pub fn snapshot(&self) -> CallTimeTable {
        let mut merged = CallTimeTable::new();
        for shard in &self.shards {
            merged.merge_from(&shard.lock().expect("cache poisoned"));
        }
        merged
    }

    /// Time call `index` of `alg` in isolation, reusing the memoised result
    /// when a call with the same timing key has been benchmarked before.
    ///
    /// The shard lock is *not* held while the executor runs, so concurrent
    /// workers never serialise on a slow benchmark; two threads may race to
    /// benchmark the same call, in which case both results are identical for
    /// the deterministic executors and the last write wins.
    pub fn cached_isolated_call(
        &self,
        executor: &mut dyn Executor,
        alg: &Algorithm,
        index: usize,
    ) -> f64 {
        let key = alg.calls[index].op.timing_key();
        let shard = self.shard(&key);
        if let Some(t) = shard.lock().expect("cache poisoned").lookup(&key) {
            return t;
        }
        let t = executor.time_isolated_call(alg, index);
        shard.lock().expect("cache poisoned").insert(key, t);
        t
    }

    /// Predict `alg`'s time as the sum of its (cached) isolated-call
    /// benchmarks — the cached equivalent of
    /// [`Executor::predict_from_isolated_calls`].
    pub fn predict(&self, executor: &mut dyn Executor, alg: &Algorithm) -> AlgorithmTiming {
        let per_call: Vec<CallTiming> = alg
            .calls
            .iter()
            .enumerate()
            .map(|(i, call)| CallTiming {
                index: i,
                label: call.label.clone(),
                flops: call.flops(),
                seconds: self.cached_isolated_call(executor, alg, i),
            })
            .collect();
        AlgorithmTiming {
            algorithm_name: alg.name.clone(),
            seconds: per_call.iter().map(|c| c.seconds).sum(),
            per_call,
            flops: alg.flops(),
        }
    }

    /// Number of distinct timing keys benchmarked (or preloaded) so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// Whether nothing has been benchmarked yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters summed over the shards: how much
    /// benchmarking the memoisation avoided.
    #[must_use]
    pub fn stats(&self) -> (usize, usize) {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").stats())
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }
}

/// An [`Executor`] adapter that routes isolated-call benchmarks through a
/// [`PredictionCache`] and passes whole-algorithm executions straight
/// through.
///
/// Selection policies receive this adapter from the planner, so
/// `MinPredictedTime` and `Hybrid` transparently share profile benchmarks
/// across algorithms, instances and planner invocations. Whole-algorithm
/// executions are *not* cached: for measured executors they are genuine
/// timing runs, and for the anomaly classification every instance must be
/// executed.
pub struct CachingExecutor<'a> {
    inner: &'a mut dyn Executor,
    cache: &'a PredictionCache,
}

impl<'a> CachingExecutor<'a> {
    /// Wrap `inner`, memoizing isolated-call timings in `cache`.
    pub fn new(inner: &'a mut dyn Executor, cache: &'a PredictionCache) -> Self {
        CachingExecutor { inner, cache }
    }
}

impl Executor for CachingExecutor<'_> {
    fn name(&self) -> String {
        format!("cached({})", self.inner.name())
    }

    fn machine(&self) -> &MachineModel {
        self.inner.machine()
    }

    fn execute_algorithm(&mut self, alg: &Algorithm) -> AlgorithmTiming {
        self.inner.execute_algorithm(alg)
    }

    fn time_isolated_call(&mut self, alg: &Algorithm, call_index: usize) -> f64 {
        self.cache.cached_isolated_call(self.inner, alg, call_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::enumerate_aatb_algorithms;
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn cached_prediction_equals_uncached_prediction() {
        let cache = PredictionCache::new();
        let mut cached_exec = SimulatedExecutor::paper_like();
        let mut plain_exec = SimulatedExecutor::paper_like();
        for alg in enumerate_aatb_algorithms(80, 514, 768) {
            let cached = cache.predict(&mut cached_exec, &alg);
            let plain = plain_exec.predict_from_isolated_calls(&alg);
            assert_eq!(cached.seconds, plain.seconds, "{}", alg.name);
            assert_eq!(cached.per_call, plain.per_call, "{}", alg.name);
        }
    }

    #[test]
    fn repeated_predictions_hit_the_cache() {
        let cache = PredictionCache::new();
        let mut exec = SimulatedExecutor::paper_like();
        let algs = enumerate_aatb_algorithms(100, 200, 300);
        for alg in &algs {
            cache.predict(&mut exec, alg);
        }
        let (_, misses_first) = cache.stats();
        for alg in &algs {
            cache.predict(&mut exec, alg);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, misses_first, "second pass must not re-benchmark");
        assert!(hits >= algs.iter().map(|a| a.calls.len()).sum::<usize>());
    }

    #[test]
    fn preload_makes_every_benchmark_a_hit_and_snapshot_round_trips() {
        // Fill a cache by predicting, snapshot it, warm-start a second cache
        // from the snapshot: the second cache never misses and produces
        // bit-identical predictions.
        let first = PredictionCache::new();
        let mut exec = SimulatedExecutor::paper_like();
        let algs = enumerate_aatb_algorithms(120, 340, 560);
        let baseline: Vec<f64> = algs
            .iter()
            .map(|a| first.predict(&mut exec, a).seconds)
            .collect();
        let snapshot = first.snapshot();
        assert_eq!(snapshot.len(), first.len());

        let warmed = PredictionCache::from_table(&snapshot);
        assert_eq!(warmed.len(), first.len());
        let warm_predictions: Vec<f64> = algs
            .iter()
            .map(|a| warmed.predict(&mut exec, a).seconds)
            .collect();
        for (cold, warm) in baseline.iter().zip(&warm_predictions) {
            assert_eq!(cold.to_bits(), warm.to_bits());
        }
        let (hits, misses) = warmed.stats();
        assert_eq!(misses, 0, "a warm-started cache must not re-benchmark");
        assert!(hits > 0);
    }

    #[test]
    fn preload_canonicalises_transposed_variant_store_entries() {
        // Warm-start regression test: a calibration store recorded under
        // transposed kernel variants must warm-start the cache so that
        // *every* spelling of the same timing key hits. `preload` used to
        // route entries to shards by the raw key's hash while
        // `cached_isolated_call` routes lookups by the canonical key's hash
        // — safe only because every `CallTimeTable` mutation path happens to
        // canonicalise on insert. `preload` (and `merge_from`) now enforce
        // the invariant locally, so a non-canonical producer (an older or
        // external serialisation) can never silently turn warm starts into
        // cold re-benchmarks.
        use lamb_expr::KernelOp;
        use lamb_matrix::{Side, Trans, Uplo};
        use lamb_perfmodel::single_call_algorithm;

        let variants = [
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
            (Trans::No, Trans::No),
        ];
        // A store recorded under non-canonical spellings: a TT GEMM and a
        // stored-lower transposed TRMM (timing key: upper, untransposed).
        let table = CallTimeTable::from_entries([
            (
                KernelOp::Gemm {
                    transa: Trans::Yes,
                    transb: Trans::Yes,
                    m: 64,
                    n: 48,
                    k: 32,
                },
                1.5e-3,
            ),
            (
                KernelOp::Trmm {
                    side: Side::Left,
                    uplo: Uplo::Lower,
                    trans: Trans::Yes,
                    m: 40,
                    n: 24,
                },
                2.5e-4,
            ),
            // A *right*-side TRMM recorded under a transposed spelling. Its
            // timing key folds `(uplo, trans)` but must keep `side`: folding
            // side away would alias this entry with a left-side TRMM of the
            // same dimensions and poison both predictions.
            (
                KernelOp::Trmm {
                    side: Side::Right,
                    uplo: Uplo::Upper,
                    trans: Trans::Yes,
                    m: 40,
                    n: 24,
                },
                7.5e-4,
            ),
        ]);
        let cache = PredictionCache::from_table(&table);
        assert_eq!(
            cache.len(),
            3,
            "left- and right-side entries of equal dimensions must not alias"
        );
        let mut exec = SimulatedExecutor::paper_like();
        for (transa, transb) in variants {
            let alg = single_call_algorithm(KernelOp::Gemm {
                transa,
                transb,
                m: 64,
                n: 48,
                k: 32,
            });
            assert_eq!(
                cache.cached_isolated_call(&mut exec, &alg, 0),
                1.5e-3,
                "{transa:?}{transb:?} must hit the preloaded entry"
            );
        }
        // The transposed TRMM's canonical spelling hits too.
        let trmm = single_call_algorithm(KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 40,
            n: 24,
        });
        assert_eq!(cache.cached_isolated_call(&mut exec, &trmm, 0), 2.5e-4);
        // The right-side entry hits under *its* canonical spelling and stays
        // distinct from the left-side entry of identical dimensions.
        let trmm_r = single_call_algorithm(KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 40,
            n: 24,
        });
        assert_eq!(cache.cached_isolated_call(&mut exec, &trmm_r, 0), 7.5e-4);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 0, "a warm-started cache must never re-benchmark");
        assert_eq!(hits, variants.len() + 2);
        // The snapshot/merge path preserves canonical keys bit-identically.
        let snapshot = cache.snapshot();
        assert_eq!(snapshot.len(), 3);
        let rewarmed = PredictionCache::from_table(&snapshot);
        assert_eq!(rewarmed.cached_isolated_call(&mut exec, &trmm, 0), 2.5e-4);
        assert_eq!(rewarmed.cached_isolated_call(&mut exec, &trmm_r, 0), 7.5e-4);
        assert_eq!(rewarmed.stats().1, 0);
    }

    #[test]
    fn caching_executor_is_transparent_for_whole_algorithm_execution() {
        let cache = PredictionCache::new();
        let mut inner = SimulatedExecutor::paper_like();
        let mut reference = SimulatedExecutor::paper_like();
        let alg = &enumerate_aatb_algorithms(90, 110, 130)[0];
        let mut wrapped = CachingExecutor::new(&mut inner, &cache);
        assert_eq!(
            wrapped.execute_algorithm(alg),
            reference.execute_algorithm(alg)
        );
        assert!(wrapped.name().contains("simulated"));
        assert!(cache.is_empty(), "execution must not touch the cache");
        let _ = wrapped.predict_from_isolated_calls(alg);
        assert_eq!(cache.len(), alg.calls.len());
    }
}
