//! The batch-level factor cache and the reuse-aware scoring executor.
//!
//! [`FactorCache`] is the planner-side implementation of
//! [`FactorStore`]: a sharded, mutex-guarded map
//! from canonical node identities ([`lamb_expr::node_identities`]) to
//! computed factors — the same sharding scheme as
//! [`PredictionCache`](crate::PredictionCache), so the many workers of a
//! batch run do not serialise on one lock. Shared across a
//! [`BatchPlanner`](crate::BatchPlanner) batch it carries factor residency
//! *between requests*: once one request's chosen algorithm factors an SPD
//! operand, every later solve against the same operand starts warm.
//!
//! [`ReuseAwareExecutor`] makes the planner's *time model* DAG-aware at batch
//! level: isolated-call benchmarks of calls whose
//! [cacheable](lamb_expr::is_cacheable_op) result is resident in the store
//! cost zero seconds, so `MinPredictedTime` (and `Hybrid`) actively prefer
//! algorithms that reuse cached factors. Non-resident calls fall through to
//! the wrapped executor — typically a
//! [`CachingExecutor`](crate::CachingExecutor), so everything else still
//! memoises through the prediction cache.

use lamb_expr::{cacheable_identities, Algorithm};
use lamb_matrix::Matrix;
use lamb_perfmodel::{AlgorithmTiming, Executor, FactorStore, MachineModel};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards (mirrors `PredictionCache`).
const SHARD_COUNT: usize = 16;

/// One shard: identity → resident factor (`None` = noted, bytes not held).
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Option<Arc<Matrix>>>,
    hits: usize,
}

/// A thread-safe, sharded store of computed factors keyed by canonical node
/// identity, shared across the requests of a batch.
#[derive(Debug)]
pub struct FactorCache {
    shards: [Mutex<Shard>; SHARD_COUNT],
}

impl Default for FactorCache {
    fn default() -> Self {
        FactorCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        }
    }
}

impl FactorCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        FactorCache::default()
    }

    /// The shard responsible for `key`.
    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Number of resident identities (noted or held).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("factor cache poisoned").entries.len())
            .sum()
    }

    /// Whether nothing is resident yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Successful byte-serving lookups so far (factors injected instead of
    /// recomputed).
    #[must_use]
    pub fn hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("factor cache poisoned").hits)
            .sum()
    }

    /// Total bytes of the factors whose contents are held.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("factor cache poisoned")
                    .entries
                    .values()
                    .filter_map(|e| e.as_ref())
                    .map(|m| (m.len() * 8) as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

impl FactorStore for FactorCache {
    fn lookup(&self, key: &str) -> Option<Arc<Matrix>> {
        let mut shard = self.shard(key).lock().expect("factor cache poisoned");
        let found = shard.entries.get(key).and_then(Clone::clone);
        if found.is_some() {
            shard.hits += 1;
        }
        found
    }

    fn store(&self, key: &str, value: Arc<Matrix>) {
        self.shard(key)
            .lock()
            .expect("factor cache poisoned")
            .entries
            .insert(key.to_string(), Some(value));
    }

    fn contains(&self, key: &str) -> bool {
        self.shard(key)
            .lock()
            .expect("factor cache poisoned")
            .entries
            .contains_key(key)
    }

    fn note(&self, key: &str) {
        // Never downgrade held bytes to a bare note.
        self.shard(key)
            .lock()
            .expect("factor cache poisoned")
            .entries
            .entry(key.to_string())
            .or_insert(None);
    }
}

/// The FLOPs `alg` actually pays given the residency of `store`: its (already
/// DAG-deduplicated) total minus the calls whose cacheable result is
/// resident. This is the batch-level FLOP discriminant — a shared-factor
/// algorithm gets cheaper as the cache warms.
#[must_use]
pub fn effective_flops(alg: &Algorithm, store: &dyn FactorStore) -> u64 {
    let mut flops = alg.flops();
    for (i, _, identity) in cacheable_identities(alg) {
        if store.contains(&identity) {
            flops = flops.saturating_sub(alg.calls[i].flops());
        }
    }
    flops
}

/// An [`Executor`] adapter that makes isolated-call benchmarks *residency
/// aware*: a call whose cacheable result is resident in the factor store
/// costs zero seconds (it would be injected, not recomputed); every other
/// call falls through to the wrapped executor. Whole-algorithm executions
/// pass straight through untouched — selection-time execution must not
/// deposit factors the batch never actually computes.
pub struct ReuseAwareExecutor<'a> {
    inner: &'a mut dyn Executor,
    store: &'a dyn FactorStore,
}

impl<'a> ReuseAwareExecutor<'a> {
    /// Wrap `inner`, discounting calls resident in `store`.
    pub fn new(inner: &'a mut dyn Executor, store: &'a dyn FactorStore) -> Self {
        ReuseAwareExecutor { inner, store }
    }
}

impl Executor for ReuseAwareExecutor<'_> {
    fn name(&self) -> String {
        format!("reuse-aware({})", self.inner.name())
    }

    fn machine(&self) -> &MachineModel {
        self.inner.machine()
    }

    fn execute_algorithm(&mut self, alg: &Algorithm) -> AlgorithmTiming {
        self.inner.execute_algorithm(alg)
    }

    fn time_isolated_call(&mut self, alg: &Algorithm, call_index: usize) -> f64 {
        let resident = cacheable_identities(alg)
            .into_iter()
            .any(|(i, _, identity)| i == call_index && self.store.contains(&identity));
        if resident {
            0.0
        } else {
            self.inner.time_isolated_call(alg, call_index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{Expression, TreeExpression};
    use lamb_perfmodel::SimulatedExecutor;

    fn solve_algorithm() -> Algorithm {
        let expr = TreeExpression::parse("S[spd]^-1*B").unwrap();
        expr.algorithms(&[64, 8])
            .unwrap()
            .into_iter()
            .find(|a| a.kernel_summary().contains("potrf"))
            .unwrap()
    }

    #[test]
    fn cache_holds_notes_and_bytes_with_hit_accounting() {
        let cache = FactorCache::new();
        assert!(cache.is_empty());
        cache.note("a");
        assert!(cache.contains("a"));
        assert!(cache.lookup("a").is_none(), "a note serves no bytes");
        assert_eq!(cache.hits(), 0);
        cache.store("a", Arc::new(Matrix::identity(4)));
        assert!(cache.lookup("a").is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.resident_bytes(), 16 * 8);
        cache.note("a");
        assert!(cache.lookup("a").is_some(), "a note never evicts bytes");
        // Many keys spread over the shards without loss.
        for i in 0..100 {
            cache.note(&format!("key-{i}"));
        }
        assert_eq!(cache.len(), 101);
    }

    #[test]
    fn resident_factors_zero_their_isolated_times_and_discount_flops() {
        let alg = solve_algorithm();
        let cache = FactorCache::new();
        let mut sim = SimulatedExecutor::paper_like();
        let cold: Vec<f64> = (0..alg.calls.len())
            .map(|i| {
                let mut reuse = ReuseAwareExecutor::new(&mut sim, &cache);
                reuse.time_isolated_call(&alg, i)
            })
            .collect();
        assert!(cold.iter().all(|&t| t > 0.0));
        assert_eq!(effective_flops(&alg, &cache), alg.flops());

        // Mark every cacheable node resident, as a batch would after planning
        // an identical earlier request.
        for (_, _, identity) in cacheable_identities(&alg) {
            cache.note(&identity);
        }
        let potrf_index = alg
            .calls
            .iter()
            .position(|c| c.op.mnemonic() == "potrf")
            .unwrap();
        let mut reuse = ReuseAwareExecutor::new(&mut sim, &cache);
        assert_eq!(reuse.time_isolated_call(&alg, potrf_index), 0.0);
        assert!(reuse.predict_from_isolated_calls(&alg).seconds < cold.iter().sum::<f64>());
        let discounted = effective_flops(&alg, &cache);
        assert!(discounted < alg.flops());
        // Executions pass through untouched (no store mutation on selection).
        let before = cache.len();
        let _ = reuse.execute_algorithm(&alg);
        assert_eq!(cache.len(), before);
    }
}
