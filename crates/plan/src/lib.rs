//! # lamb-plan
//!
//! The unified planning pipeline of the `lamb` workspace: **one** code path
//! from an expression instance to a selected, executed algorithm and its
//! anomaly verdict.
//!
//! The ICPP'22 paper this workspace reproduces is fundamentally about a
//! selection pipeline: enumerate the mathematically equivalent algorithms of
//! an expression instance, rank them by a discriminant (FLOP count, predicted
//! time, or a hybrid), execute the choice, and ask whether the discriminant
//! was misled (an *anomaly*). [`Planner`] packages that pipeline behind a
//! builder:
//!
//! ```
//! use lamb_expr::AatbExpression;
//! use lamb_plan::Planner;
//! use lamb_select::MinPredictedTime;
//!
//! let expr = AatbExpression::new();
//! let plan = Planner::for_expression(&expr)
//!     .policy(MinPredictedTime)          // or any custom SelectionPolicy
//!     .threshold(0.10)                   // anomaly time-score threshold
//!     .plan(&[80, 514, 768])             // the paper's Figure-11 instance
//!     .unwrap();
//!
//! println!("chosen: {}", plan.chosen_algorithm().name);
//! let outcome = plan.execute();
//! assert!(outcome.is_anomaly());        // FLOP counts mislead here...
//! assert!(outcome.regret() < 0.05);     // ...but prediction does not.
//! ```
//!
//! The pieces:
//!
//! * [`Planner`] — builder over an expression: policy, executor (factory),
//!   threshold, prediction scoring; `plan` / `plan_with` for one instance,
//!   [`Planner::plan_grid`] for a batched sweep fanned out across worker
//!   threads, [`Planner::predict_instance`] for Experiment-3-style predicted
//!   verdicts.
//! * [`Plan`] — the enumerated algorithm set with per-algorithm
//!   [`AlgorithmScore`]s and the policy's chosen index;
//!   [`Plan::execute`] / [`Plan::execute_with`] time every algorithm and
//!   produce a [`PlanExecution`] carrying the [`Classification`] verdict.
//! * [`PredictionCache`] / [`CachingExecutor`] — a sharded memo table of
//!   isolated-call benchmark times keyed by the call's timing key
//!   (operation and dimensions, with timing-irrelevant GEMM transposition
//!   flags cleared), shared across algorithms, instances and threads, so
//!   repeated profile benchmarks are paid once. It warm-starts from a
//!   persisted [`CalibrationStore`](lamb_perfmodel::CalibrationStore)
//!   ([`Planner::with_store`]) and exports back to one
//!   ([`Planner::snapshot_cache`]).
//! * [`FactorCache`] / [`ReuseAwareExecutor`] — the batch-level factor
//!   store: computed factors (Cholesky factors, Gram products, half-solves)
//!   keyed by canonical node identity, shared across the requests of a
//!   batch, with a reuse-aware scoring wrapper that zeroes the predicted
//!   cost of resident factors so `MinPredictedTime` prefers shared-factor
//!   algorithms.
//! * [`BatchPlanner`] / [`BatchRequest`] — the batch-serving front end:
//!   parse a whole file of expression instances, fan them out across rayon
//!   workers against the shared cache, and report aggregate [`BatchStats`]
//!   (cache hit rate, predicted versus FLOP-optimal time, anomaly count).
//!   "Calibrate once, plan many."
//!
//! [`Classification`]: lamb_select::Classification

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod cache;
pub mod factor_cache;
mod plan;
mod planner;

pub use batch::{BatchOutcome, BatchParseError, BatchPlanner, BatchRequest, BatchStats};
pub use cache::{CachingExecutor, PredictionCache};
pub use factor_cache::{effective_flops, FactorCache, ReuseAwareExecutor};
pub use plan::{AlgorithmScore, Plan, PlanError, PlanExecution};
pub use planner::Planner;

// The selection vocabulary the planner builds on, re-exported so that
// `lamb_plan` alone suffices for most call sites.
pub use lamb_select::{
    Hybrid, MinFlops, MinPredictedTime, Oracle, SelectError, SelectionPolicy, Strategy,
};
