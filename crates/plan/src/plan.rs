//! The output of planning: a scored, selected algorithm set that can be
//! executed and judged.

use crate::cache::PredictionCache;
use lamb_expr::{Algorithm, GenerateError};
use lamb_perfmodel::{AlgorithmTiming, Executor};
use lamb_select::{AlgorithmMeasurement, Classification, InstanceEvaluation, SelectError};
use std::fmt;
use std::sync::Arc;

/// Why a planner could not produce a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The dimension tuple had the wrong length for the expression.
    DimensionMismatch {
        /// Number of dimensions the expression requires.
        expected: usize,
        /// Number of dimensions supplied.
        got: usize,
    },
    /// The expression enumerated no algorithms for this instance.
    NoAlgorithms,
    /// Algorithm enumeration itself failed (shape inconsistency, degenerate
    /// chain, inconsistent operand reuse, ...).
    Generate(GenerateError),
    /// The selection policy failed.
    Select(SelectError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} dimension sizes, got {got}")
            }
            PlanError::NoAlgorithms => write!(f, "the expression enumerated no algorithms"),
            PlanError::Generate(e) => write!(f, "enumeration failed: {e}"),
            PlanError::Select(e) => write!(f, "selection failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SelectError> for PlanError {
    fn from(e: SelectError) -> Self {
        PlanError::Select(e)
    }
}

impl From<GenerateError> for PlanError {
    fn from(e: GenerateError) -> Self {
        PlanError::Generate(e)
    }
}

/// Per-algorithm scores recorded while planning.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmScore {
    /// Index of the algorithm in the plan's algorithm list.
    pub index: usize,
    /// Algorithm name.
    pub name: String,
    /// FLOP count on this instance (Section 3.1 models).
    pub flops: u64,
    /// Time predicted from (cached) isolated-call benchmarks, when the
    /// planner was asked to score predictions (`None` otherwise).
    pub predicted_seconds: Option<f64>,
}

/// A fully planned expression instance: the enumerated algorithm set, its
/// scores, and the policy's choice. Produced by
/// [`Planner::plan`](crate::Planner::plan); execute it with
/// [`Plan::execute`] or [`Plan::execute_with`].
#[derive(Clone)]
pub struct Plan {
    /// The instance's dimension tuple.
    pub dims: Vec<usize>,
    /// Name of the expression that was planned.
    pub expression: String,
    /// Every mathematically equivalent algorithm for this instance.
    pub algorithms: Vec<Algorithm>,
    /// One score entry per algorithm.
    pub scores: Vec<AlgorithmScore>,
    /// Index (into `algorithms`) of the algorithm the policy selected.
    pub chosen: usize,
    /// Name of the policy that made the choice.
    pub policy: String,
    /// How many enumerated algorithms were dropped because their kernel-call
    /// signature duplicated an earlier one (rewrites can derive the same
    /// call sequence along different paths).
    pub duplicates_removed: usize,
    pub(crate) threshold: f64,
    pub(crate) factory: Arc<dyn Fn() -> Box<dyn Executor> + Send + Sync>,
    pub(crate) cache: Arc<PredictionCache>,
}

impl fmt::Debug for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plan")
            .field("dims", &self.dims)
            .field("expression", &self.expression)
            .field("algorithms", &self.algorithms.len())
            .field("chosen", &self.chosen)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Plan {
    /// The algorithm the policy selected.
    #[must_use]
    pub fn chosen_algorithm(&self) -> &Algorithm {
        &self.algorithms[self.chosen]
    }

    /// The score entry of the chosen algorithm.
    #[must_use]
    pub fn chosen_score(&self) -> &AlgorithmScore {
        &self.scores[self.chosen]
    }

    /// The score entry of the FLOP-minimal algorithm — what a pure FLOP
    /// discriminant (Linnea, Armadillo, Julia) would select.
    #[must_use]
    pub fn flop_optimal_score(&self) -> &AlgorithmScore {
        self.scores
            .iter()
            .min_by_key(|s| s.flops)
            .expect("a plan has at least one algorithm")
    }

    /// The smallest predicted time over all algorithms, when predictions
    /// were scored.
    #[must_use]
    pub fn best_predicted_seconds(&self) -> Option<f64> {
        self.scores
            .iter()
            .filter_map(|s| s.predicted_seconds)
            .min_by(|a, b| a.partial_cmp(b).expect("finite predictions"))
    }

    /// The anomaly time-score threshold this plan was made under.
    #[must_use]
    pub fn anomaly_threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether the FLOP-minimal algorithm is *predicted* to be more than the
    /// plan's threshold slower than the predicted-fastest algorithm — the
    /// paper's anomaly definition evaluated on predictions. `None` when the
    /// plan was made without prediction scoring.
    #[must_use]
    pub fn predicted_anomaly(&self) -> Option<bool> {
        let flop_optimal = self.flop_optimal_score().predicted_seconds?;
        let best = self.best_predicted_seconds()?;
        Some(flop_optimal > best * (1.0 + self.threshold))
    }

    /// Execute every algorithm with a fresh executor from the planner's
    /// factory and judge the choice. See [`Plan::execute_with`].
    #[must_use]
    pub fn execute(&self) -> PlanExecution {
        let mut executor = (self.factory)();
        self.execute_with(executor.as_mut())
    }

    /// Execute every algorithm of the instance with `executor`, classify the
    /// instance (anomaly or not) at the planner's threshold, and judge the
    /// policy's choice against the empirical optimum.
    #[must_use]
    pub fn execute_with(&self, executor: &mut dyn Executor) -> PlanExecution {
        let timings: Vec<AlgorithmTiming> = self
            .algorithms
            .iter()
            .map(|alg| executor.execute_algorithm(alg))
            .collect();
        let measurements = timings
            .iter()
            .enumerate()
            .map(|(i, t)| AlgorithmMeasurement {
                index: i,
                name: t.algorithm_name.clone(),
                flops: t.flops,
                seconds: t.seconds,
            })
            .collect();
        let evaluation = InstanceEvaluation {
            dims: self.dims.clone(),
            measurements,
        };
        let verdict = evaluation.classify(self.threshold);
        let chosen_seconds = timings[self.chosen].seconds;
        let best_seconds = timings
            .iter()
            .map(|t| t.seconds)
            .fold(f64::INFINITY, f64::min);
        PlanExecution {
            evaluation,
            verdict,
            timings,
            chosen: self.chosen,
            chosen_seconds,
            best_seconds,
        }
    }

    /// The shared prediction cache backing this plan (and its planner).
    #[must_use]
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }
}

/// The result of executing a [`Plan`]: timings for every algorithm, the
/// anomaly verdict, and how the policy's choice fared.
#[derive(Debug, Clone)]
pub struct PlanExecution {
    /// Execution times of every algorithm, as an anomaly-classification
    /// input.
    pub evaluation: InstanceEvaluation,
    /// The anomaly classification at the planner's threshold.
    pub verdict: Classification,
    /// Full per-call timings of every algorithm.
    pub timings: Vec<AlgorithmTiming>,
    /// Index of the algorithm the policy selected.
    pub chosen: usize,
    /// Actual execution time of the chosen algorithm (seconds).
    pub chosen_seconds: f64,
    /// Actual execution time of the best algorithm (seconds).
    pub best_seconds: f64,
}

impl PlanExecution {
    /// Relative slowdown of the chosen algorithm versus the empirical optimum
    /// (0 means the policy picked a fastest algorithm).
    #[must_use]
    pub fn regret(&self) -> f64 {
        if self.best_seconds <= 0.0 {
            return 0.0;
        }
        (self.chosen_seconds - self.best_seconds).max(0.0) / self.best_seconds
    }

    /// Whether the instance is an anomaly (the minimum-FLOPs algorithms are
    /// all measurably slower than the fastest) at the planner's threshold.
    #[must_use]
    pub fn is_anomaly(&self) -> bool {
        self.verdict.is_anomaly
    }
}
