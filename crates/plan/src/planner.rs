//! The builder-style [`Planner`]: one pipeline from expression instance to
//! selected algorithm.

use crate::cache::{CachingExecutor, PredictionCache};
use crate::factor_cache::{effective_flops, FactorCache, ReuseAwareExecutor};
use crate::plan::{AlgorithmScore, Plan, PlanError};
use lamb_expr::{
    cacheable_identities, eliminate_common_subexpressions, Algorithm, Expression, KernelOp,
    OperandId,
};
use lamb_perfmodel::{CalibrationStore, CallTimeTable, Executor, FactorStore, SimulatedExecutor};
use lamb_select::{AlgorithmMeasurement, InstanceEvaluation, MinFlops, SelectionPolicy, Strategy};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Plans expression instances: enumerate the mathematically equivalent
/// algorithms, score them, and let a [`SelectionPolicy`] choose.
///
/// ```
/// use lamb_expr::AatbExpression;
/// use lamb_plan::Planner;
/// use lamb_select::MinPredictedTime;
///
/// let expr = AatbExpression::new();
/// let planner = Planner::for_expression(&expr).policy(MinPredictedTime);
/// let plan = planner.plan(&[80, 514, 768]).unwrap();
/// let outcome = plan.execute();
/// // On this paper instance the cheapest algorithms are not the fastest,
/// // and the prediction-based policy avoids the trap.
/// assert!(outcome.is_anomaly());
/// assert!(outcome.regret() < 0.05);
/// ```
pub struct Planner<'e> {
    expr: &'e dyn Expression,
    policy: Arc<dyn SelectionPolicy>,
    factory: Arc<dyn Fn() -> Box<dyn Executor> + Send + Sync>,
    threshold: f64,
    score_predictions: bool,
    top_k: Option<usize>,
    cache: Arc<PredictionCache>,
    use_cse: bool,
    factor_cache: Option<Arc<FactorCache>>,
}

impl<'e> Planner<'e> {
    /// Start planning for `expr` with the defaults: the `MinFlops` policy
    /// (what Linnea/Armadillo/Julia do), the paper-like simulated executor,
    /// predicted-time scoring enabled, and the 10% anomaly threshold of
    /// Experiment 1.
    #[must_use]
    pub fn for_expression(expr: &'e dyn Expression) -> Self {
        Planner {
            expr,
            policy: Arc::new(MinFlops),
            factory: Arc::new(|| Box::new(SimulatedExecutor::paper_like())),
            threshold: 0.10,
            score_predictions: true,
            top_k: None,
            cache: Arc::new(PredictionCache::new()),
            use_cse: true,
            factor_cache: None,
        }
    }

    /// Enable or disable common-subexpression elimination over the enumerated
    /// kernel-call sequences (on by default). With CSE on, every candidate
    /// algorithm is rewritten so identical subcomputations — repeated POTRFs
    /// of one SPD operand, repeated SYRK Gram products, repeated TRSM
    /// half-solves — are computed once and referenced thereafter, and the
    /// FLOP scores charge each distinct node once. Disable for an ablation
    /// (`--no-cse` in the CLI).
    #[must_use]
    pub fn cse(mut self, enabled: bool) -> Self {
        self.use_cse = enabled;
        self
    }

    /// Share a [`FactorCache`] with other planners (typically through a
    /// [`crate::BatchPlanner`] batch): cacheable factors already resident in
    /// the cache score as free — zero FLOPs, zero predicted seconds — so
    /// `MinPredictedTime` (and `Hybrid`) prefer algorithms that reuse them,
    /// and each plan's chosen algorithm registers its own factors for later
    /// instances. Off by default: without a factor cache, planning is
    /// completely independent across instances.
    #[must_use]
    pub fn factor_cache(mut self, cache: Arc<FactorCache>) -> Self {
        self.factor_cache = Some(cache);
        self
    }

    /// Use `policy` to choose among the enumerated algorithms.
    #[must_use]
    pub fn policy(mut self, policy: impl SelectionPolicy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// Use an already-shared policy (e.g. one driving a whole batch).
    #[must_use]
    pub fn shared_policy(mut self, policy: Arc<dyn SelectionPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Share `cache` with other planners (and with [`crate::BatchPlanner`]):
    /// every planner wired to the same cache benchmarks each distinct kernel
    /// call at most once between them.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<PredictionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Warm-start the prediction cache from a persisted
    /// [`CalibrationStore`]: every kernel call whose timing key the store
    /// covers is a cache hit instead of a fresh benchmark. See the
    /// `calibrate` CLI command and [`Planner::snapshot_cache`] for the other
    /// half of the round trip.
    ///
    /// Stores written by `calibrate --autotune` also carry the autotuned
    /// `BlockConfig`
    /// ([`CalibrationStore::tuned_block_config`]); construct the measured
    /// executor under that configuration so the preloaded timings describe
    /// the blocking actually run (the CLI's executor factory does this).
    #[must_use]
    pub fn with_store(self, store: &CalibrationStore) -> Self {
        self.cache.preload(&store.calls);
        self
    }

    /// Export the prediction cache (preloaded entries plus everything
    /// benchmarked since) as a [`CallTimeTable`], e.g. to merge back into a
    /// calibration store.
    #[must_use]
    pub fn snapshot_cache(&self) -> CallTimeTable {
        self.cache.snapshot()
    }

    /// Use the built-in policy named by `strategy` (back-compat constructor).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.policy = Arc::from(strategy.to_policy());
        self
    }

    /// Time algorithms with clones of `executor` (one clone per worker in
    /// [`Planner::plan_grid`]).
    #[must_use]
    pub fn executor<E: Executor + Clone + Sync + 'static>(self, executor: E) -> Self {
        self.executor_factory(move || Box::new(executor.clone()))
    }

    /// Time algorithms with executors built by `factory`. The factory is
    /// invoked once per [`Planner::plan`] call and once per worker thread in
    /// [`Planner::plan_grid`].
    #[must_use]
    pub fn executor_factory(
        mut self,
        factory: impl Fn() -> Box<dyn Executor> + Send + Sync + 'static,
    ) -> Self {
        self.factory = Arc::new(factory);
        self
    }

    /// Time-score threshold used when executed plans classify anomalies
    /// (paper: 10% in Experiment 1, 5% in Experiments 2-3).
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Whether [`Plan::scores`](crate::Plan) should include predicted times
    /// (benchmarked through the shared cache). Disable for tight loops that
    /// only need the FLOP scores and the policy's choice.
    #[must_use]
    pub fn score_predictions(mut self, enabled: bool) -> Self {
        self.score_predictions = enabled;
        self
    }

    /// Restrict enumeration to the `k` algorithms with the smallest FLOP
    /// counts (branch-and-bound pruned by the general enumerator). This
    /// keeps [`Planner::plan`] and [`Planner::plan_grid`] tractable on long
    /// chains, whose full algorithm set grows factorially.
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k.max(1));
        self
    }

    /// The expression being planned.
    #[must_use]
    pub fn expression(&self) -> &'e dyn Expression {
        self.expr
    }

    /// The shared prediction cache: distinct kernel calls benchmarked so far.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// `(hits, misses)` of the shared prediction cache.
    #[must_use]
    pub fn cache_stats(&self) -> (usize, usize) {
        self.cache.stats()
    }

    /// Enumerate (pruned) and, when CSE is enabled, rewrite every candidate
    /// into its shared (DAG) form so each distinct node is computed — and
    /// charged — once.
    fn cse_algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, PlanError> {
        let enumerated = self.expr.algorithms_pruned(dims, self.top_k)?;
        if self.use_cse {
            Ok(enumerated
                .into_iter()
                .map(|a| eliminate_common_subexpressions(&a).algorithm)
                .collect())
        } else {
            Ok(enumerated)
        }
    }

    // Zero dimensions are deliberately *not* rejected here: every kernel,
    // FLOP model and executor handles degenerate (empty) operands, and the
    // degenerate-dimension proptests drive zero- and unit-sized instances
    // through this exact path.
    fn validate(&self, dims: &[usize]) -> Result<(), PlanError> {
        let expected = self.expr.num_dims();
        if dims.len() != expected {
            return Err(PlanError::DimensionMismatch {
                expected,
                got: dims.len(),
            });
        }
        Ok(())
    }

    /// Plan one instance with a fresh executor from the factory.
    ///
    /// ```
    /// use lamb_expr::TreeExpression;
    /// use lamb_plan::{MinPredictedTime, Planner};
    ///
    /// let expr = TreeExpression::parse("A*A^T*B").unwrap();
    /// let planner = Planner::for_expression(&expr).policy(MinPredictedTime);
    /// let plan = planner.plan(&[80, 514, 768]).unwrap();
    ///
    /// // Five mathematically equivalent algorithms, each scored by FLOPs and
    /// // by predicted time from (cached) isolated-call benchmarks.
    /// assert_eq!(plan.algorithms.len(), 5);
    /// assert!(plan.scores.iter().all(|s| s.predicted_seconds.is_some()));
    /// // On this paper instance the FLOP-cheapest algorithm is NOT the one
    /// // the prediction-based policy picks: the anomaly the paper studies.
    /// let min_flops = plan.scores.iter().map(|s| s.flops).min().unwrap();
    /// assert_ne!(plan.chosen_score().flops, min_flops);
    /// ```
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan(&self, dims: &[usize]) -> Result<Plan, PlanError> {
        let mut executor = (self.factory)();
        self.plan_with(dims, executor.as_mut())
    }

    /// Plan one instance, consulting `executor` (through the shared
    /// prediction cache) for predicted times.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan_with(
        &self,
        dims: &[usize],
        executor: &mut dyn Executor,
    ) -> Result<Plan, PlanError> {
        self.validate(dims)?;
        let enumerated = self.cse_algorithms(dims)?;
        // Deduplicate on the *post-CSE* canonical form: rewrites can derive
        // sequences that only become identical once their internal
        // duplicates are merged.
        let (algorithms, duplicates_removed) = dedup_by_signature(enumerated);
        if algorithms.is_empty() {
            return Err(PlanError::NoAlgorithms);
        }
        // Debug-mode gate: every candidate the policy may pick must pass the
        // static analyser. Compiled out in release builds (no timing skew).
        for alg in &algorithms {
            lamb_verify::debug_assert_verified(alg);
        }
        let mut caching = CachingExecutor::new(executor, &self.cache);
        let (scores, chosen) = match &self.factor_cache {
            Some(fc) => {
                let store: &dyn FactorStore = fc.as_ref();
                let mut reuse = ReuseAwareExecutor::new(&mut caching, store);
                let scores: Vec<AlgorithmScore> = algorithms
                    .iter()
                    .enumerate()
                    .map(|(index, alg)| AlgorithmScore {
                        index,
                        name: alg.name.clone(),
                        flops: effective_flops(alg, store),
                        predicted_seconds: self
                            .score_predictions
                            .then(|| reuse.predict_from_isolated_calls(alg).seconds),
                    })
                    .collect();
                let chosen = self.policy.select(&algorithms, &mut reuse)?;
                // The chosen algorithm's factors become resident for later
                // instances planned against the same cache (bytes arrive
                // when an execution actually computes them).
                for (_, _, identity) in cacheable_identities(&algorithms[chosen]) {
                    fc.note(&identity);
                }
                (scores, chosen)
            }
            None => {
                let scores: Vec<AlgorithmScore> = algorithms
                    .iter()
                    .enumerate()
                    .map(|(index, alg)| AlgorithmScore {
                        index,
                        name: alg.name.clone(),
                        flops: alg.flops(),
                        predicted_seconds: self
                            .score_predictions
                            .then(|| caching.predict_from_isolated_calls(alg).seconds),
                    })
                    .collect();
                let chosen = self.policy.select(&algorithms, &mut caching)?;
                (scores, chosen)
            }
        };
        Ok(Plan {
            dims: dims.to_vec(),
            expression: self.expr.name(),
            algorithms,
            scores,
            chosen,
            policy: self.policy.name(),
            duplicates_removed,
            threshold: self.threshold,
            factory: Arc::clone(&self.factory),
            cache: Arc::clone(&self.cache),
        })
    }

    /// Plan a batch of instances, fanning out across worker threads: the
    /// grid is split into one contiguous chunk per worker, each worker
    /// builds one executor from the factory, and the prediction cache is
    /// shared by all of them.
    ///
    /// Results come back in input order, one per instance; an invalid
    /// instance yields its own `Err` without failing the rest. Verdicts are
    /// independent of the number of worker threads because the deterministic
    /// executors key their timings on the kernel-call signatures alone.
    #[must_use]
    pub fn plan_grid(&self, grid: &[Vec<usize>]) -> Vec<Result<Plan, PlanError>> {
        if grid.is_empty() {
            return Vec::new();
        }
        let workers = rayon::current_num_threads().clamp(1, grid.len());
        let chunk_size = grid.len().div_ceil(workers);
        let chunks: Vec<Vec<Vec<usize>>> = grid.chunks(chunk_size).map(<[_]>::to_vec).collect();
        let per_chunk: Vec<Vec<Result<Plan, PlanError>>> = chunks
            .into_par_iter()
            .map(|chunk| {
                let mut executor = (self.factory)();
                chunk
                    .iter()
                    .map(|dims| self.plan_with(dims, executor.as_mut()))
                    .collect()
            })
            .collect();
        per_chunk.into_iter().flatten().collect()
    }

    /// Build the *predicted* evaluation of one instance: per-algorithm times
    /// formed by summing (cached) isolated-call benchmarks — the predictor of
    /// the paper's Experiment 3. Classify the result to get the predicted
    /// anomaly verdict.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn predict_instance(
        &self,
        dims: &[usize],
        executor: &mut dyn Executor,
    ) -> Result<InstanceEvaluation, PlanError> {
        self.validate(dims)?;
        let (algorithms, _) = dedup_by_signature(self.cse_algorithms(dims)?);
        if algorithms.is_empty() {
            return Err(PlanError::NoAlgorithms);
        }
        for alg in &algorithms {
            lamb_verify::debug_assert_verified(alg);
        }
        let measurements = algorithms
            .iter()
            .enumerate()
            .map(|(index, alg)| match &self.factor_cache {
                Some(fc) => {
                    let store: &dyn FactorStore = fc.as_ref();
                    let mut caching = CachingExecutor::new(executor, &self.cache);
                    let mut reuse = ReuseAwareExecutor::new(&mut caching, store);
                    AlgorithmMeasurement {
                        index,
                        name: alg.name.clone(),
                        flops: effective_flops(alg, store),
                        seconds: reuse.predict_from_isolated_calls(alg).seconds,
                    }
                }
                None => AlgorithmMeasurement {
                    index,
                    name: alg.name.clone(),
                    flops: alg.flops(),
                    seconds: self.cache.predict(executor, alg).seconds,
                },
            })
            .collect();
        Ok(InstanceEvaluation {
            dims: dims.to_vec(),
            measurements,
        })
    }
}

/// The behavioural identity of an algorithm: its kernel-call signature
/// (operation, operand wiring) with the presentational labels stripped.
type CallSignature = Vec<(KernelOp, Vec<OperandId>, OperandId)>;

fn call_signature(alg: &Algorithm) -> CallSignature {
    alg.calls
        .iter()
        .map(|c| (c.op.clone(), c.inputs.clone(), c.output))
        .collect()
}

/// Drop algorithms whose kernel-call signature duplicates an earlier one
/// (rewrites can derive the same sequence along different paths), returning
/// the survivors in order and the number removed.
fn dedup_by_signature(algorithms: Vec<Algorithm>) -> (Vec<Algorithm>, usize) {
    let before = algorithms.len();
    let mut seen: HashSet<CallSignature> = HashSet::with_capacity(before);
    let deduped: Vec<Algorithm> = algorithms
        .into_iter()
        .filter(|alg| seen.insert(call_signature(alg)))
        .collect();
    let removed = before - deduped.len();
    (deduped, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{AatbExpression, GenerateError, MatrixChainExpression, TreeExpression};
    use lamb_select::{MinPredictedTime, Oracle, SelectError};

    #[test]
    fn planning_validates_dimensions() {
        let expr = AatbExpression::new();
        let planner = Planner::for_expression(&expr);
        assert_eq!(
            planner.plan(&[10, 20]).unwrap_err(),
            PlanError::DimensionMismatch {
                expected: 3,
                got: 2
            }
        );
        // Zero dimensions are legal degenerate instances, not errors: they
        // plan (and execute to empty/zero results) like any other size.
        let degenerate = planner.plan(&[10, 0, 30]).unwrap();
        assert_eq!(degenerate.chosen_algorithm().output().unwrap().cols, 30);
    }

    #[test]
    fn default_policy_is_min_flops() {
        let expr = MatrixChainExpression::abcd();
        let planner = Planner::for_expression(&expr);
        let plan = planner.plan(&[100, 20, 300, 20, 500]).unwrap();
        assert_eq!(plan.policy, "min-flops");
        let min = plan.scores.iter().map(|s| s.flops).min().unwrap();
        assert_eq!(plan.chosen_score().flops, min);
        assert_eq!(plan.algorithms.len(), 6);
        assert_eq!(plan.expression, expr.name());
    }

    #[test]
    fn scores_include_predictions_by_default_and_can_be_disabled() {
        let expr = AatbExpression::new();
        let planner = Planner::for_expression(&expr);
        let plan = planner.plan(&[80, 100, 120]).unwrap();
        assert!(plan.scores.iter().all(|s| s.predicted_seconds.is_some()));
        assert!(planner.cache_len() > 0);

        let lean = Planner::for_expression(&expr).score_predictions(false);
        let plan = lean.plan(&[80, 100, 120]).unwrap();
        assert!(plan.scores.iter().all(|s| s.predicted_seconds.is_none()));
        assert_eq!(lean.cache_len(), 0, "min-flops must not benchmark");
    }

    #[test]
    fn policy_and_strategy_builders_agree() {
        let expr = AatbExpression::new();
        let dims = [400usize, 100, 1100];
        let via_policy = Planner::for_expression(&expr)
            .policy(MinPredictedTime)
            .plan(&dims)
            .unwrap();
        let via_strategy = Planner::for_expression(&expr)
            .strategy(Strategy::MinPredictedTime)
            .plan(&dims)
            .unwrap();
        assert_eq!(via_policy.chosen, via_strategy.chosen);
        assert_eq!(via_policy.policy, via_strategy.policy);
    }

    #[test]
    fn execution_judges_the_choice_against_the_optimum() {
        let expr = AatbExpression::new();
        let oracle = Planner::for_expression(&expr).policy(Oracle);
        let outcome = oracle.plan(&[300, 700, 900]).unwrap().execute();
        assert!(outcome.regret() < 1e-12, "the oracle has no regret");
        assert_eq!(outcome.timings.len(), 5);
        assert!(outcome.best_seconds > 0.0);
    }

    #[test]
    fn select_errors_surface_as_plan_errors() {
        // A planner over an expression that enumerates nothing.
        struct Empty;
        impl Expression for Empty {
            fn name(&self) -> String {
                "empty".into()
            }
            fn num_dims(&self) -> usize {
                1
            }
            fn algorithms(&self, _dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
                Ok(Vec::new())
            }
        }
        let expr = Empty;
        let planner = Planner::for_expression(&expr);
        assert_eq!(planner.plan(&[10]).unwrap_err(), PlanError::NoAlgorithms);
        // And the SelectError conversion is exercised directly.
        assert_eq!(
            PlanError::from(SelectError::EmptyAlgorithmSet),
            PlanError::Select(SelectError::EmptyAlgorithmSet)
        );
    }

    #[test]
    fn enumeration_errors_surface_as_plan_errors() {
        struct Broken;
        impl Expression for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn num_dims(&self) -> usize {
                1
            }
            fn algorithms(&self, _dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
                Err(GenerateError::Empty)
            }
        }
        let expr = Broken;
        let planner = Planner::for_expression(&expr);
        assert_eq!(
            planner.plan(&[10]).unwrap_err(),
            PlanError::Generate(GenerateError::Empty)
        );
        let message = planner.plan(&[10]).unwrap_err().to_string();
        assert!(message.contains("enumeration failed"), "{message}");
    }

    #[test]
    fn duplicate_call_signatures_are_removed_and_reported() {
        // An expression that (artificially) enumerates the same algorithm
        // twice under different names.
        struct Doubled;
        impl Expression for Doubled {
            fn name(&self) -> String {
                "doubled".into()
            }
            fn num_dims(&self) -> usize {
                3
            }
            fn algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
                let aatb = AatbExpression::new();
                let mut algs = aatb.algorithms(dims)?;
                let mut twin = algs[0].clone();
                twin.name = "the same algorithm again".into();
                for call in &mut twin.calls {
                    call.label = format!("{} (relabelled)", call.label);
                }
                algs.push(twin);
                Ok(algs)
            }
        }
        let expr = Doubled;
        let plan = Planner::for_expression(&expr)
            .plan(&[80, 100, 120])
            .unwrap();
        assert_eq!(plan.duplicates_removed, 1, "the relabelled twin is a dup");
        assert_eq!(plan.algorithms.len(), 5);
        // The paper expressions have no duplicates.
        let aatb = AatbExpression::new();
        let plan = Planner::for_expression(&aatb)
            .plan(&[80, 100, 120])
            .unwrap();
        assert_eq!(plan.duplicates_removed, 0);
        assert_eq!(plan.algorithms.len(), 5);
    }

    #[test]
    fn dedup_happens_on_the_post_cse_canonical_form() {
        use lamb_expr::{KernelCall, KernelOp, OperandId, OperandInfo, OperandRole};
        use lamb_matrix::{Structure, Trans};
        // (A*B)*(A*B) on square operands, enumerated two ways: one algorithm
        // shares the product T = A*B, its twin recomputes it into a second
        // intermediate. The kernel-call signatures differ *until* CSE merges
        // the recomputation, at which point the twin collapses onto the
        // original and must be removed as a duplicate.
        struct TwinnedByRedundancy;
        impl Expression for TwinnedByRedundancy {
            fn name(&self) -> String {
                "twinned".into()
            }
            fn num_dims(&self) -> usize {
                1
            }
            fn algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
                let s = dims[0];
                let square = |id: usize, name: &str, role: OperandRole| OperandInfo {
                    id: OperandId(id),
                    rows: s,
                    cols: s,
                    role,
                    name: name.to_string(),
                    structure: Structure::General,
                };
                let gemm = |a: usize, b: usize, out: usize, label: &str| KernelCall {
                    op: KernelOp::Gemm {
                        transa: Trans::No,
                        transb: Trans::No,
                        m: s,
                        n: s,
                        k: s,
                    },
                    inputs: vec![OperandId(a), OperandId(b)],
                    output: OperandId(out),
                    label: label.to_string(),
                };
                let shared = Algorithm {
                    name: "share the product".into(),
                    operands: vec![
                        square(0, "A", OperandRole::Input),
                        square(1, "B", OperandRole::Input),
                        square(2, "T", OperandRole::Intermediate),
                        square(3, "out", OperandRole::Output),
                    ],
                    calls: vec![gemm(0, 1, 2, "T = A B"), gemm(2, 2, 3, "out = T T")],
                };
                let mut twin = shared.clone();
                twin.name = "recompute the product".into();
                twin.operands
                    .push(square(4, "T (recomputed)", OperandRole::Intermediate));
                twin.calls = vec![
                    gemm(0, 1, 2, "T = A B"),
                    gemm(0, 1, 4, "T' = A B (again)"),
                    gemm(2, 4, 3, "out = T T'"),
                ];
                Ok(vec![shared, twin])
            }
        }
        let expr = TwinnedByRedundancy;
        // With CSE (the default) the twin is canonicalised back onto the
        // original and deduplicated.
        let plan = Planner::for_expression(&expr)
            .score_predictions(false)
            .plan(&[32])
            .unwrap();
        assert_eq!(plan.duplicates_removed, 1, "the twin is a post-CSE dup");
        assert_eq!(plan.algorithms.len(), 1);
        // The --no-cse ablation sees two genuinely different call sequences.
        let plan = Planner::for_expression(&expr)
            .score_predictions(false)
            .cse(false)
            .plan(&[32])
            .unwrap();
        assert_eq!(plan.duplicates_removed, 0, "pre-CSE the signatures differ");
        assert_eq!(plan.algorithms.len(), 2);
    }

    #[test]
    fn a_shared_factor_cache_warms_successive_plans() {
        let expr = TreeExpression::parse("S[spd]^-1*B").unwrap();
        let cache = Arc::new(crate::FactorCache::new());
        let planner = Planner::for_expression(&expr)
            .policy(MinPredictedTime)
            .factor_cache(Arc::clone(&cache));
        let cold = planner.plan(&[120, 16]).unwrap();
        assert!(
            !cache.is_empty(),
            "the chosen algorithm's factors are registered"
        );
        let warm = planner.plan(&[120, 16]).unwrap();
        let cold_seconds = cold.chosen_score().predicted_seconds.unwrap();
        let warm_seconds = warm.chosen_score().predicted_seconds.unwrap();
        assert!(
            warm_seconds < cold_seconds,
            "resident factors must discount the warm prediction \
             ({warm_seconds} vs {cold_seconds})"
        );
        assert!(
            warm.chosen_score().flops < cold.chosen_score().flops,
            "effective FLOPs are discounted once the factors are resident"
        );
        // Without the factor cache the two plans are identical (and both
        // match the cold plan): planning stays instance-independent.
        let independent = Planner::for_expression(&expr).policy(MinPredictedTime);
        let first = independent.plan(&[120, 16]).unwrap();
        let second = independent.plan(&[120, 16]).unwrap();
        assert_eq!(first.chosen, second.chosen);
        assert_eq!(
            first.chosen_score().predicted_seconds,
            second.chosen_score().predicted_seconds
        );
    }

    #[test]
    fn top_k_limits_the_scored_algorithm_set() {
        let expr = TreeExpression::parse("A*B*C*D*E*F").unwrap();
        let planner = Planner::for_expression(&expr).score_predictions(false);
        let dims = [60, 20, 90, 30, 120, 40, 70];
        let full = planner.plan(&dims).unwrap();
        assert_eq!(full.algorithms.len(), 120); // 5!
        let pruned_planner = Planner::for_expression(&expr)
            .score_predictions(false)
            .top_k(8);
        let pruned = pruned_planner.plan(&dims).unwrap();
        assert_eq!(pruned.algorithms.len(), 8);
        // The pruned set contains the FLOP-cheapest algorithm, so min-flops
        // selection is unaffected.
        assert_eq!(
            pruned.chosen_score().flops,
            full.scores.iter().map(|s| s.flops).min().unwrap()
        );
    }

    #[test]
    fn plan_grid_builds_at_most_one_executor_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let expr = AatbExpression::new();
        let built = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&built);
        let planner = Planner::for_expression(&expr).executor_factory(move || {
            counter.fetch_add(1, Ordering::Relaxed);
            Box::new(lamb_perfmodel::SimulatedExecutor::paper_like())
        });
        let grid: Vec<Vec<usize>> = (1..=64).map(|i| vec![20 + i, 100, 200]).collect();
        let results = planner.plan_grid(&grid);
        assert_eq!(results.len(), 64);
        assert!(results.iter().all(Result::is_ok));
        let factories = built.load(Ordering::Relaxed);
        assert!(
            factories <= rayon::current_num_threads(),
            "{factories} executors for {} workers",
            rayon::current_num_threads()
        );
    }

    #[test]
    fn the_shared_cache_spans_instances() {
        let expr = AatbExpression::new();
        let planner = Planner::for_expression(&expr).policy(MinPredictedTime);
        let _ = planner.plan(&[80, 100, 120]).unwrap();
        let after_first = planner.cache_stats();
        // The same instance again: only hits, no new misses.
        let _ = planner.plan(&[80, 100, 120]).unwrap();
        let after_second = planner.cache_stats();
        assert_eq!(after_first.1, after_second.1, "no new benchmarks");
        assert!(after_second.0 > after_first.0, "cache hits increased");
    }
}
