//! Concurrency stress for the sharded [`PredictionCache`]: many threads
//! preloading calibration tables (with non-canonical keys), taking
//! snapshots, predicting algorithm times and running whole plans against one
//! shared cache, concurrently. The invariants checked at every step and at
//! the end:
//!
//! * every snapshot — including mid-stress snapshots — contains only
//!   canonical timing keys with finite, non-negative times (checked with
//!   `lamb-verify`'s table lint, the PR-5 cache-poisoning class);
//! * concurrent preloads of transposed-variant entries never split one
//!   benchmark entry into several;
//! * predictions and plans agree with a single-threaded reference run.
//!
//! Run under ThreadSanitizer (see the `concurrency` CI job) to turn data
//! races into hard failures; under the normal test profile this still
//! hammers the shard locks enough to catch logic races.

use lamb_expr::{AatbExpression, Expression, KernelOp, TreeExpression};
use lamb_matrix::Trans;
use lamb_perfmodel::{CallTimeTable, SimulatedExecutor};
use lamb_plan::{MinPredictedTime, Planner, PredictionCache};
use lamb_verify::verify_call_table;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A small calibration table whose keys are deliberately *non-canonical*
/// spellings (transposed GEMMs): every ingest path must canonicalise them.
fn transposed_variant_table(seed: usize) -> CallTimeTable {
    let base = 16 + (seed % 7) * 8;
    CallTimeTable::from_entries(vec![
        (
            KernelOp::Gemm {
                transa: Trans::Yes,
                transb: Trans::No,
                m: base,
                n: base + 4,
                k: base + 8,
            },
            1.0e-4 + seed as f64 * 1.0e-6,
        ),
        (
            KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::Yes,
                m: base + 4,
                n: base,
                k: base + 8,
            },
            2.0e-4,
        ),
    ])
}

#[test]
fn sharded_cache_survives_concurrent_preload_snapshot_and_planning() {
    let cache = Arc::new(PredictionCache::new());
    let aatb = AatbExpression::new();
    let chain = TreeExpression::parse("A*B*C*D").unwrap();
    let failed = Arc::new(AtomicBool::new(false));

    let threads = 12;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let aatb = &aatb;
            let chain = &chain;
            let failed = Arc::clone(&failed);
            scope.spawn(move || {
                let mut executor = SimulatedExecutor::paper_like();
                for round in 0..20 {
                    match (t + round) % 4 {
                        // Preloaders: hammer every shard with canonicalised
                        // and to-be-canonicalised entries.
                        0 => cache.preload(&transposed_variant_table(t * 31 + round)),
                        // Snapshotters: a mid-stress snapshot must already
                        // be canonical and finite.
                        1 => {
                            let report = verify_call_table(&cache.snapshot());
                            if !report.is_clean() {
                                eprintln!("mid-stress snapshot unclean:\n{report}");
                                failed.store(true, Ordering::Relaxed);
                            }
                        }
                        // Predictors: fill the cache through the miss path.
                        2 => {
                            let dims = [40 + round, 60 + t, 80];
                            for alg in aatb.algorithms(&dims).unwrap() {
                                let timing = cache.predict(&mut executor, &alg);
                                if !timing.seconds.is_finite() || timing.seconds < 0.0 {
                                    failed.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        // Planners: the full pipeline over the shared cache.
                        _ => {
                            let planner = Planner::for_expression(chain)
                                .policy(MinPredictedTime)
                                .shared_cache(Arc::clone(&cache));
                            let dims = vec![30 + t, 40, 20 + round, 50, 25];
                            if planner.plan(&dims).is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    assert!(!failed.load(Ordering::Relaxed), "a stress thread failed");

    // Final snapshot: canonical keys only, finite times, and the transposed
    // GEMM variants collapsed into single canonical entries.
    let snapshot = cache.snapshot();
    let report = verify_call_table(&snapshot);
    assert!(report.is_clean(), "final snapshot unclean:\n{report}");
    assert!(!snapshot.is_empty());
    let (hits, misses) = cache.stats();
    assert!(misses > 0, "predictors must have filled the cache");
    assert!(hits > 0, "repeated instances must have hit the cache");

    // Reference check: a fresh single-threaded prediction over the same
    // expression agrees with one computed through the stressed cache (the
    // deterministic executor keys timings on call signatures alone).
    let mut executor = SimulatedExecutor::paper_like();
    let reference = PredictionCache::new();
    let dims = [40, 60, 80];
    for alg in aatb.algorithms(&dims).unwrap() {
        let fresh = reference.predict(&mut executor, &alg).seconds;
        let stressed = cache.predict(&mut executor, &alg).seconds;
        assert!(
            (fresh - stressed).abs() <= 1e-12 * fresh.max(1.0),
            "stressed cache diverged: {stressed} vs {fresh}"
        );
    }
}

#[test]
fn concurrent_preloads_of_equivalent_keys_collapse_to_one_entry() {
    let cache = Arc::new(PredictionCache::new());
    std::thread::scope(|scope| {
        for t in 0..8 {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for _ in 0..50 {
                    // Same logical GEMM under the four transposition
                    // spellings: one canonical entry must result.
                    for (ta, tb) in [
                        (Trans::No, Trans::No),
                        (Trans::Yes, Trans::No),
                        (Trans::No, Trans::Yes),
                        (Trans::Yes, Trans::Yes),
                    ] {
                        cache.preload(&CallTimeTable::from_entries(vec![(
                            KernelOp::Gemm {
                                transa: ta,
                                transb: tb,
                                m: 32,
                                n: 24,
                                k: 48,
                            },
                            1.0e-4 + t as f64 * 1.0e-7,
                        )]));
                    }
                }
            });
        }
    });
    let snapshot = cache.snapshot();
    assert_eq!(snapshot.len(), 1, "variants must collapse to one entry");
    assert!(verify_call_table(&snapshot).is_clean());
}
