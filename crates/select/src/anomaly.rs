//! Anomaly classification (Section 3.3 of the paper).
//!
//! An instance is an *anomaly* when none of the cheapest (minimum FLOP count)
//! algorithms is among the fastest algorithms, and the time score exceeds a
//! threshold (10% in Experiment 1, 5% in Experiments 2 and 3).

use crate::scores::{flop_score, time_score};

/// FLOP count and execution time of one algorithm on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmMeasurement {
    /// Index of the algorithm in the expression's algorithm list.
    pub index: usize,
    /// Algorithm name.
    pub name: String,
    /// FLOP count on this instance.
    pub flops: u64,
    /// Execution (or predicted) time in seconds on this instance.
    pub seconds: f64,
}

/// The evaluation of every algorithm of an expression on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceEvaluation {
    /// The instance's dimension tuple.
    pub dims: Vec<usize>,
    /// One measurement per algorithm.
    pub measurements: Vec<AlgorithmMeasurement>,
}

/// The outcome of classifying one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Indices of the cheapest algorithms (minimum FLOP count, with ties).
    pub cheapest: Vec<usize>,
    /// Indices of the fastest algorithms (minimum time, with ties).
    pub fastest: Vec<usize>,
    /// Time score of Section 3.3.
    pub time_score: f64,
    /// FLOP score of Section 3.3.
    pub flop_score: f64,
    /// Whether the instance is classified as an anomaly at the requested
    /// threshold.
    pub is_anomaly: bool,
}

impl InstanceEvaluation {
    /// Indices of the algorithms with the minimum FLOP count.
    #[must_use]
    pub fn cheapest_set(&self) -> Vec<usize> {
        let Some(min) = self.measurements.iter().map(|m| m.flops).min() else {
            return Vec::new();
        };
        self.measurements
            .iter()
            .filter(|m| m.flops == min)
            .map(|m| m.index)
            .collect()
    }

    /// Indices of the algorithms with the minimum execution time. Ties within
    /// a relative tolerance of `1e-12` are kept (exact float ties are rare but
    /// possible with simulated timings).
    #[must_use]
    pub fn fastest_set(&self) -> Vec<usize> {
        let Some(min) = self
            .measurements
            .iter()
            .map(|m| m.seconds)
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
        else {
            return Vec::new();
        };
        self.measurements
            .iter()
            .filter(|m| m.seconds <= min * (1.0 + 1e-12))
            .map(|m| m.index)
            .collect()
    }

    /// Classify the instance at the given time-score threshold.
    #[must_use]
    pub fn classify(&self, time_score_threshold: f64) -> Classification {
        let cheapest = self.cheapest_set();
        let fastest = self.fastest_set();
        if cheapest.is_empty() || fastest.is_empty() {
            return Classification {
                cheapest,
                fastest,
                time_score: 0.0,
                flop_score: 0.0,
                is_anomaly: false,
            };
        }
        let by_index = |idx: usize| {
            self.measurements
                .iter()
                .find(|m| m.index == idx)
                .expect("index from the measurement set")
        };
        // Shortest time among the cheapest algorithms.
        let t_cheapest = cheapest
            .iter()
            .map(|&i| by_index(i).seconds)
            .fold(f64::INFINITY, f64::min);
        // Shortest time overall.
        let t_fastest = fastest
            .iter()
            .map(|&i| by_index(i).seconds)
            .fold(f64::INFINITY, f64::min);
        // FLOP count of the cheapest algorithms and of the cheapest among the
        // fastest algorithms.
        let f_cheapest = cheapest
            .iter()
            .map(|&i| by_index(i).flops)
            .min()
            .unwrap_or(0);
        let f_fastest = fastest
            .iter()
            .map(|&i| by_index(i).flops)
            .min()
            .unwrap_or(0);

        let ts = time_score(t_cheapest, t_fastest);
        let fs = flop_score(f_cheapest, f_fastest);
        let disjoint = !cheapest.iter().any(|i| fastest.contains(i));
        Classification {
            cheapest,
            fastest,
            time_score: ts,
            flop_score: fs,
            is_anomaly: disjoint && ts > time_score_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(entries: &[(u64, f64)]) -> InstanceEvaluation {
        InstanceEvaluation {
            dims: vec![0; 3],
            measurements: entries
                .iter()
                .enumerate()
                .map(|(i, &(flops, seconds))| AlgorithmMeasurement {
                    index: i,
                    name: format!("alg {i}"),
                    flops,
                    seconds,
                })
                .collect(),
        }
    }

    #[test]
    fn cheapest_and_fastest_sets_handle_ties() {
        let e = eval(&[(100, 2.0), (100, 1.5), (200, 1.0), (200, 1.0)]);
        assert_eq!(e.cheapest_set(), vec![0, 1]);
        assert_eq!(e.fastest_set(), vec![2, 3]);
    }

    #[test]
    fn anomaly_when_sets_are_disjoint_and_score_exceeds_threshold() {
        // Cheapest (100 FLOPs) takes 2.0 s; an algorithm with 150 FLOPs takes 1.0 s.
        let e = eval(&[(100, 2.0), (150, 1.0)]);
        let c = e.classify(0.10);
        assert!(c.is_anomaly);
        assert!((c.time_score - 0.5).abs() < 1e-12);
        assert!((c.flop_score - (50.0 / 150.0)).abs() < 1e-12);
        assert_eq!(c.cheapest, vec![0]);
        assert_eq!(c.fastest, vec![1]);
    }

    #[test]
    fn not_an_anomaly_when_a_cheapest_algorithm_is_fastest() {
        let e = eval(&[(100, 1.0), (150, 1.2), (300, 4.0)]);
        let c = e.classify(0.10);
        assert!(!c.is_anomaly);
        assert_eq!(c.time_score, 0.0);
        assert_eq!(c.flop_score, 0.0);
    }

    #[test]
    fn threshold_filters_marginal_anomalies() {
        // Disjoint sets but only 5% faster: not an anomaly at the 10% threshold,
        // an anomaly at the 1% threshold.
        let e = eval(&[(100, 1.00), (150, 0.95)]);
        assert!(!e.classify(0.10).is_anomaly);
        assert!(e.classify(0.01).is_anomaly);
    }

    #[test]
    fn tie_between_cheapest_algorithms_uses_their_best_time() {
        // Two cheapest algorithms, one slow, one fast; the fast one is the
        // overall fastest, so no anomaly.
        let e = eval(&[(100, 3.0), (100, 1.0), (400, 1.1)]);
        let c = e.classify(0.05);
        assert!(!c.is_anomaly);
        // And when the expensive algorithm is fastest, the time score compares
        // against the *better* of the cheapest pair.
        let e2 = eval(&[(100, 3.0), (100, 2.0), (400, 1.0)]);
        let c2 = e2.classify(0.05);
        assert!(c2.is_anomaly);
        assert!((c2.time_score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flop_score_uses_cheapest_among_fastest() {
        // Two fastest algorithms tie on time; the FLOP score uses the cheaper
        // of the two (300, not 500).
        let e = eval(&[(100, 2.0), (300, 1.0), (500, 1.0)]);
        let c = e.classify(0.05);
        assert!(c.is_anomaly);
        assert!((c.flop_score - (200.0 / 300.0)).abs() < 1e-12);
    }

    #[test]
    fn paper_severity_example() {
        // "performing 45% more FLOPs reduces the execution time by 40%".
        let e = eval(&[(1000, 1.0), (1450, 0.6)]);
        let c = e.classify(0.10);
        assert!(c.is_anomaly);
        assert!((c.time_score - 0.4).abs() < 1e-12);
        assert!((c.flop_score - 450.0 / 1450.0).abs() < 1e-12);
    }

    #[test]
    fn empty_evaluation_is_not_an_anomaly() {
        let e = eval(&[]);
        let c = e.classify(0.1);
        assert!(!c.is_anomaly);
        assert!(c.cheapest.is_empty());
    }
}
