//! Anomaly classification (Section 3.3 of the paper).
//!
//! An instance is an *anomaly* when none of the cheapest (minimum FLOP count)
//! algorithms is among the fastest algorithms, and the time score exceeds a
//! threshold (10% in Experiment 1, 5% in Experiments 2 and 3).

use crate::scores::{flop_score, time_score};
use std::collections::HashMap;

/// FLOP count and execution time of one algorithm on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmMeasurement {
    /// Index of the algorithm in the expression's algorithm list.
    pub index: usize,
    /// Algorithm name.
    pub name: String,
    /// FLOP count on this instance.
    pub flops: u64,
    /// Execution (or predicted) time in seconds on this instance.
    pub seconds: f64,
}

/// The evaluation of every algorithm of an expression on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceEvaluation {
    /// The instance's dimension tuple.
    pub dims: Vec<usize>,
    /// One measurement per algorithm.
    pub measurements: Vec<AlgorithmMeasurement>,
}

/// The outcome of classifying one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Indices of the cheapest algorithms (minimum FLOP count, with ties).
    pub cheapest: Vec<usize>,
    /// Indices of the fastest algorithms (minimum time, with ties).
    pub fastest: Vec<usize>,
    /// Time score of Section 3.3.
    pub time_score: f64,
    /// FLOP score of Section 3.3.
    pub flop_score: f64,
    /// Whether the instance is classified as an anomaly at the requested
    /// threshold.
    pub is_anomaly: bool,
}

impl InstanceEvaluation {
    /// Indices of the algorithms with the minimum FLOP count.
    #[must_use]
    pub fn cheapest_set(&self) -> Vec<usize> {
        let Some(min) = self.measurements.iter().map(|m| m.flops).min() else {
            return Vec::new();
        };
        self.measurements
            .iter()
            .filter(|m| m.flops == min)
            .map(|m| m.index)
            .collect()
    }

    /// Indices of the algorithms with the minimum execution time. Ties within
    /// a relative tolerance of `1e-12` are kept (exact float ties are rare but
    /// possible with simulated timings).
    #[must_use]
    pub fn fastest_set(&self) -> Vec<usize> {
        let Some(min) = self
            .measurements
            .iter()
            .map(|m| m.seconds)
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
        else {
            return Vec::new();
        };
        self.measurements
            .iter()
            .filter(|m| m.seconds <= min * (1.0 + 1e-12))
            .map(|m| m.index)
            .collect()
    }

    /// The evaluation a *shared-factor family* actually experiences: each
    /// algorithm's measurement reduced by the work that factors resident
    /// from earlier instances of the family already paid for.
    ///
    /// `discounts` maps an algorithm index to `(flops, seconds)` to deduct —
    /// typically the FLOP count and predicted time of its cached POTRF /
    /// SYRK / TRSM calls. Indices absent from the map are unchanged;
    /// deductions saturate at zero. Classifying the result answers whether
    /// the instance is still an anomaly once factor reuse is priced in:
    /// families whose shared-factor algorithm is FLOP-expensive standalone
    /// but effectively free warm flip their verdict here.
    #[must_use]
    pub fn with_reuse_discount(&self, discounts: &HashMap<usize, (u64, f64)>) -> Self {
        let measurements = self
            .measurements
            .iter()
            .map(|m| {
                let &(flops, seconds) = discounts.get(&m.index).unwrap_or(&(0, 0.0));
                AlgorithmMeasurement {
                    index: m.index,
                    name: m.name.clone(),
                    flops: m.flops.saturating_sub(flops),
                    seconds: (m.seconds - seconds).max(0.0),
                }
            })
            .collect();
        InstanceEvaluation {
            dims: self.dims.clone(),
            measurements,
        }
    }

    /// Classify the instance at the given time-score threshold.
    #[must_use]
    pub fn classify(&self, time_score_threshold: f64) -> Classification {
        let cheapest = self.cheapest_set();
        let fastest = self.fastest_set();
        if cheapest.is_empty() || fastest.is_empty() {
            return Classification {
                cheapest,
                fastest,
                time_score: 0.0,
                flop_score: 0.0,
                is_anomaly: false,
            };
        }
        let by_index = |idx: usize| {
            self.measurements
                .iter()
                .find(|m| m.index == idx)
                .expect("index from the measurement set")
        };
        // Shortest time among the cheapest algorithms.
        let t_cheapest = cheapest
            .iter()
            .map(|&i| by_index(i).seconds)
            .fold(f64::INFINITY, f64::min);
        // Shortest time overall.
        let t_fastest = fastest
            .iter()
            .map(|&i| by_index(i).seconds)
            .fold(f64::INFINITY, f64::min);
        // FLOP count of the cheapest algorithms and of the cheapest among the
        // fastest algorithms.
        let f_cheapest = cheapest
            .iter()
            .map(|&i| by_index(i).flops)
            .min()
            .unwrap_or(0);
        let f_fastest = fastest
            .iter()
            .map(|&i| by_index(i).flops)
            .min()
            .unwrap_or(0);

        let ts = time_score(t_cheapest, t_fastest);
        let fs = flop_score(f_cheapest, f_fastest);
        let disjoint = !cheapest.iter().any(|i| fastest.contains(i));
        Classification {
            cheapest,
            fastest,
            time_score: ts,
            flop_score: fs,
            is_anomaly: disjoint && ts > time_score_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(entries: &[(u64, f64)]) -> InstanceEvaluation {
        InstanceEvaluation {
            dims: vec![0; 3],
            measurements: entries
                .iter()
                .enumerate()
                .map(|(i, &(flops, seconds))| AlgorithmMeasurement {
                    index: i,
                    name: format!("alg {i}"),
                    flops,
                    seconds,
                })
                .collect(),
        }
    }

    #[test]
    fn cheapest_and_fastest_sets_handle_ties() {
        let e = eval(&[(100, 2.0), (100, 1.5), (200, 1.0), (200, 1.0)]);
        assert_eq!(e.cheapest_set(), vec![0, 1]);
        assert_eq!(e.fastest_set(), vec![2, 3]);
    }

    #[test]
    fn anomaly_when_sets_are_disjoint_and_score_exceeds_threshold() {
        // Cheapest (100 FLOPs) takes 2.0 s; an algorithm with 150 FLOPs takes 1.0 s.
        let e = eval(&[(100, 2.0), (150, 1.0)]);
        let c = e.classify(0.10);
        assert!(c.is_anomaly);
        assert!((c.time_score - 0.5).abs() < 1e-12);
        assert!((c.flop_score - (50.0 / 150.0)).abs() < 1e-12);
        assert_eq!(c.cheapest, vec![0]);
        assert_eq!(c.fastest, vec![1]);
    }

    #[test]
    fn not_an_anomaly_when_a_cheapest_algorithm_is_fastest() {
        let e = eval(&[(100, 1.0), (150, 1.2), (300, 4.0)]);
        let c = e.classify(0.10);
        assert!(!c.is_anomaly);
        assert_eq!(c.time_score, 0.0);
        assert_eq!(c.flop_score, 0.0);
    }

    #[test]
    fn threshold_filters_marginal_anomalies() {
        // Disjoint sets but only 5% faster: not an anomaly at the 10% threshold,
        // an anomaly at the 1% threshold.
        let e = eval(&[(100, 1.00), (150, 0.95)]);
        assert!(!e.classify(0.10).is_anomaly);
        assert!(e.classify(0.01).is_anomaly);
    }

    #[test]
    fn tie_between_cheapest_algorithms_uses_their_best_time() {
        // Two cheapest algorithms, one slow, one fast; the fast one is the
        // overall fastest, so no anomaly.
        let e = eval(&[(100, 3.0), (100, 1.0), (400, 1.1)]);
        let c = e.classify(0.05);
        assert!(!c.is_anomaly);
        // And when the expensive algorithm is fastest, the time score compares
        // against the *better* of the cheapest pair.
        let e2 = eval(&[(100, 3.0), (100, 2.0), (400, 1.0)]);
        let c2 = e2.classify(0.05);
        assert!(c2.is_anomaly);
        assert!((c2.time_score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flop_score_uses_cheapest_among_fastest() {
        // Two fastest algorithms tie on time; the FLOP score uses the cheaper
        // of the two (300, not 500).
        let e = eval(&[(100, 2.0), (300, 1.0), (500, 1.0)]);
        let c = e.classify(0.05);
        assert!(c.is_anomaly);
        assert!((c.flop_score - (200.0 / 300.0)).abs() < 1e-12);
    }

    #[test]
    fn paper_severity_example() {
        // "performing 45% more FLOPs reduces the execution time by 40%".
        let e = eval(&[(1000, 1.0), (1450, 0.6)]);
        let c = e.classify(0.10);
        assert!(c.is_anomaly);
        assert!((c.time_score - 0.4).abs() < 1e-12);
        assert!((c.flop_score - 450.0 / 1450.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_discounts_flip_shared_factor_verdicts() {
        use std::collections::HashMap;
        // Standalone: algorithm 0 (a direct method) is both cheapest and
        // fastest; the factor-based algorithm 1 pays its factorisation.
        let e = eval(&[(100, 1.0), (180, 1.6)]);
        assert!(!e.classify(0.10).is_anomaly);
        // Warm in a shared-factor family, algorithm 1's factor is resident:
        // deduct its factorisation cost. It becomes the fastest while
        // algorithm 0 stays FLOP-cheapest — an anomaly the standalone
        // evaluation cannot see.
        let discounts: HashMap<usize, (u64, f64)> = [(1, (60, 1.2))].into();
        let warm = e.with_reuse_discount(&discounts);
        assert_eq!(warm.measurements[1].flops, 120);
        let c = warm.classify(0.10);
        assert!(c.is_anomaly, "factor reuse flips the verdict: {c:?}");
        assert_eq!(c.fastest, vec![1]);
        // Unmentioned indices are untouched; deductions saturate at zero.
        assert_eq!(warm.measurements[0], e.measurements[0]);
        let floor = e.with_reuse_discount(&[(0, (1000, 99.0)), (1, (1000, 99.0))].into());
        assert_eq!(floor.measurements[0].flops, 0);
        assert_eq!(floor.measurements[1].seconds, 0.0);
    }

    #[test]
    fn empty_evaluation_is_not_an_anomaly() {
        let e = eval(&[]);
        let c = e.classify(0.1);
        assert!(!c.is_anomaly);
        assert!(c.cheapest.is_empty());
    }
}
