//! Per-call backend assignment: once a policy has chosen *which algorithm*
//! to run, the executor may still offer several kernel implementations
//! (backends) per call. This module picks, for every call of the chosen
//! algorithm, the backend whose isolated benchmark is fastest — the same
//! benchmark-driven discrimination the paper applies to whole algorithms,
//! applied one level down.

use lamb_expr::Algorithm;
use lamb_perfmodel::Executor;
use std::collections::HashMap;

/// The backend chosen for one kernel call.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendChoice {
    /// Index of the call within the algorithm.
    pub call_index: usize,
    /// The call's human-readable label.
    pub label: String,
    /// Name of the chosen backend.
    pub backend: String,
    /// Predicted (isolated-benchmark) time under the chosen backend.
    pub seconds: f64,
}

/// A per-call backend assignment for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendAssignment {
    /// One choice per kernel call, in call order.
    pub per_call: Vec<BackendChoice>,
    /// Sum of the chosen per-call predicted times.
    pub seconds: f64,
}

impl BackendAssignment {
    /// The assignment as the call-index → backend-name map that
    /// [`Executor::set_backend_assignment`] consumes.
    #[must_use]
    pub fn as_map(&self) -> HashMap<usize, String> {
        self.per_call
            .iter()
            .map(|c| (c.call_index, c.backend.clone()))
            .collect()
    }

    /// Whether the assignment uses more than one distinct backend.
    #[must_use]
    pub fn is_mixed(&self) -> bool {
        self.per_call
            .windows(2)
            .any(|w| w[0].backend != w[1].backend)
    }

    /// The distinct backend names used, in first-use order.
    #[must_use]
    pub fn backends_used(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for c in &self.per_call {
            if !names.contains(&c.backend) {
                names.push(c.backend.clone());
            }
        }
        names
    }
}

/// Assign each call of `alg` the backend whose isolated benchmark under
/// `executor` is fastest. Ties (and executors that report a single backend)
/// resolve to the earliest name in [`Executor::backend_names`] order, so the
/// default backend wins when it is not strictly beaten.
pub fn assign_backends(alg: &Algorithm, executor: &mut dyn Executor) -> BackendAssignment {
    let names = executor.backend_names();
    let per_call: Vec<BackendChoice> = alg
        .calls
        .iter()
        .enumerate()
        .map(|(i, call)| {
            let mut best_name = names[0].clone();
            let mut best_t = executor.time_isolated_call_on(alg, i, &names[0]);
            for name in &names[1..] {
                let t = executor.time_isolated_call_on(alg, i, name);
                if t < best_t {
                    best_t = t;
                    best_name = name.clone();
                }
            }
            BackendChoice {
                call_index: i,
                label: call.label.clone(),
                backend: best_name,
                seconds: best_t,
            }
        })
        .collect();
    BackendAssignment {
        seconds: per_call.iter().map(|c| c.seconds).sum(),
        per_call,
    }
}

/// The assignment that pins *every* call of `alg` to the named backend — the
/// `--backend <name>` ablation. The name is not validated here; executors
/// fall back to their default backend for names they do not know.
pub fn pinned_backends(
    alg: &Algorithm,
    executor: &mut dyn Executor,
    backend: &str,
) -> BackendAssignment {
    let per_call: Vec<BackendChoice> = alg
        .calls
        .iter()
        .enumerate()
        .map(|(i, call)| BackendChoice {
            call_index: i,
            label: call.label.clone(),
            backend: backend.to_string(),
            seconds: executor.time_isolated_call_on(alg, i, backend),
        })
        .collect();
    BackendAssignment {
        seconds: per_call.iter().map(|c| c.seconds).sum(),
        per_call,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::enumerate_chain_algorithms;
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn assignment_mixes_backends_when_call_sizes_straddle_the_crossover() {
        // One large product (native wins) and one tiny product (reference
        // wins) in a single chain.
        let mut sim = SimulatedExecutor::paper_like();
        let algs = enumerate_chain_algorithms(&[300, 300, 300, 8, 8]).unwrap();
        let alg = algs
            .iter()
            .find(|a| {
                let mut flops: Vec<u64> =
                    a.calls.iter().map(lamb_expr::KernelCall::flops).collect();
                flops.sort_unstable();
                flops[0] * 100 < flops[flops.len() - 1]
            })
            .expect("a parenthesisation with one large and one tiny call");
        let assignment = assign_backends(alg, &mut sim);
        assert_eq!(assignment.per_call.len(), alg.calls.len());
        assert!(
            assignment.is_mixed(),
            "expected mixed backends, got {:?}",
            assignment.backends_used()
        );
        assert!(assignment.seconds > 0.0);
        let map = assignment.as_map();
        assert_eq!(map.len(), alg.calls.len());
        // The assignment is at least as fast (per the model) as either pin.
        for name in ["native", "reference"] {
            let pinned = pinned_backends(alg, &mut sim, name);
            assert!(assignment.seconds <= pinned.seconds + 1e-15, "{name}");
        }
    }

    #[test]
    fn pinned_assignment_uses_one_backend_everywhere() {
        let mut sim = SimulatedExecutor::paper_like();
        let alg = &enumerate_chain_algorithms(&[60, 60, 60, 60, 60]).unwrap()[0];
        let pinned = pinned_backends(alg, &mut sim, "reference");
        assert!(!pinned.is_mixed());
        assert_eq!(pinned.backends_used(), vec!["reference".to_string()]);
        assert!(pinned.per_call.iter().all(|c| c.seconds > 0.0));
    }
}
