//! # lamb-select
//!
//! Algorithm selection and anomaly analysis:
//!
//! * the **time score** and **FLOP score** of Section 3.3 of the paper
//!   ([`scores`]),
//! * **anomaly classification** of an instance from the per-algorithm FLOP
//!   counts and execution times ([`anomaly`]), and
//! * **selection policies** — minimum FLOP count (the discriminant under
//!   study), performance-profile-based prediction, a hybrid of the two, and
//!   an empirical oracle, behind the object-safe [`SelectionPolicy`] trait
//!   ([`policy`]), with the closed [`Strategy`] enum kept as a thin
//!   constructor ([`strategy`]), and
//! * **per-call backend assignment** — after an algorithm is chosen, pick for
//!   each kernel call the executor backend whose isolated benchmark is
//!   fastest ([`backend`]).
//!
//! The `lamb-plan` crate builds the user-facing `Planner` pipeline on top of
//! these pieces.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod anomaly;
pub mod backend;
pub mod policy;
pub mod scores;
pub mod strategy;

pub use anomaly::{AlgorithmMeasurement, Classification, InstanceEvaluation};
pub use backend::{assign_backends, pinned_backends, BackendAssignment, BackendChoice};
pub use policy::{Hybrid, MinFlops, MinPredictedTime, Oracle, SelectError, SelectionPolicy};
pub use scores::{flop_score, time_score};
pub use strategy::{evaluate_instance, evaluate_strategy, Strategy, StrategyOutcome};
