//! # lamb-select
//!
//! Algorithm selection and anomaly analysis:
//!
//! * the **time score** and **FLOP score** of Section 3.3 of the paper
//!   ([`scores`]),
//! * **anomaly classification** of an instance from the per-algorithm FLOP
//!   counts and execution times ([`anomaly`]), and
//! * **selection strategies** — minimum FLOP count (the discriminant under
//!   study), performance-profile-based prediction, a hybrid of the two, and
//!   an empirical oracle ([`strategy`]).

#![deny(missing_docs)]

pub mod anomaly;
pub mod scores;
pub mod strategy;

pub use anomaly::{AlgorithmMeasurement, Classification, InstanceEvaluation};
pub use scores::{flop_score, time_score};
pub use strategy::{evaluate_instance, evaluate_strategy, Strategy, StrategyOutcome};
