//! Object-safe selection policies.
//!
//! A [`SelectionPolicy`] picks one algorithm out of an enumerated set,
//! consulting an [`Executor`] for predicted (or, for the oracle, actual)
//! execution times. The four policies of the paper — minimum FLOP count,
//! minimum predicted time, the FLOP-margin hybrid, and the empirical oracle —
//! are provided as built-in implementations; external crates can implement
//! the trait to plug new policies into the `lamb-plan` `Planner` without
//! touching this crate.
//!
//! Unlike the historical [`Strategy::select`](crate::Strategy::select) entry
//! point (which panicked), `select` reports failure through [`SelectError`].

use lamb_expr::Algorithm;
use lamb_perfmodel::Executor;
use std::fmt;

/// Why a policy could not select an algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectError {
    /// The algorithm set was empty: there is nothing to select from.
    EmptyAlgorithmSet,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::EmptyAlgorithmSet => {
                write!(f, "cannot select from an empty algorithm set")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// An algorithm selection policy.
///
/// Implementations must be deterministic for a deterministic executor: the
/// planner's grid fan-out relies on `select` returning the same index for the
/// same `(algorithms, executor state)` regardless of which thread calls it.
pub trait SelectionPolicy: Send + Sync {
    /// Short name for reports, e.g. `"min-flops"`.
    fn name(&self) -> String;

    /// Select an algorithm index from `algorithms`, consulting `executor` for
    /// predictions or (for the oracle) actual executions.
    ///
    /// # Errors
    ///
    /// Returns [`SelectError::EmptyAlgorithmSet`] when `algorithms` is empty.
    fn select(
        &self,
        algorithms: &[Algorithm],
        executor: &mut dyn Executor,
    ) -> Result<usize, SelectError>;
}

/// Index of the algorithm minimising `key`, or an error on an empty set.
pub(crate) fn argmin_by_key(
    algorithms: &[Algorithm],
    mut key: impl FnMut(&Algorithm) -> f64,
) -> Result<usize, SelectError> {
    let mut best = None;
    let mut best_key = f64::INFINITY;
    for (i, alg) in algorithms.iter().enumerate() {
        let k = key(alg);
        if best.is_none() || k < best_key {
            best_key = k;
            best = Some(i);
        }
    }
    best.ok_or(SelectError::EmptyAlgorithmSet)
}

/// Pick (one of) the algorithm(s) with the minimum FLOP count — the
/// discriminant whose reliability the paper studies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinFlops;

impl SelectionPolicy for MinFlops {
    fn name(&self) -> String {
        "min-flops".into()
    }

    fn select(
        &self,
        algorithms: &[Algorithm],
        _executor: &mut dyn Executor,
    ) -> Result<usize, SelectError> {
        argmin_by_key(algorithms, |a| a.flops() as f64)
    }
}

/// Pick the algorithm whose time, predicted by summing isolated-call
/// benchmarks (kernel performance profiles), is minimal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPredictedTime;

impl SelectionPolicy for MinPredictedTime {
    fn name(&self) -> String {
        "min-predicted-time".into()
    }

    fn select(
        &self,
        algorithms: &[Algorithm],
        executor: &mut dyn Executor,
    ) -> Result<usize, SelectError> {
        argmin_by_key(algorithms, |a| {
            executor.predict_from_isolated_calls(a).seconds
        })
    }
}

/// Consider only algorithms within `flop_margin` (relative) of the minimum
/// FLOP count, then pick the one with the best predicted time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hybrid {
    /// Relative FLOP slack, e.g. `0.5` admits algorithms with up to 50% more
    /// FLOPs than the cheapest.
    pub flop_margin: f64,
}

impl SelectionPolicy for Hybrid {
    fn name(&self) -> String {
        format!("hybrid(margin={})", self.flop_margin)
    }

    fn select(
        &self,
        algorithms: &[Algorithm],
        executor: &mut dyn Executor,
    ) -> Result<usize, SelectError> {
        if algorithms.is_empty() {
            return Err(SelectError::EmptyAlgorithmSet);
        }
        let min_flops = algorithms.iter().map(Algorithm::flops).min().unwrap_or(0) as f64;
        let limit = min_flops * (1.0 + self.flop_margin.max(0.0));
        let mut best = None;
        let mut best_time = f64::INFINITY;
        for (i, alg) in algorithms.iter().enumerate() {
            if alg.flops() as f64 <= limit {
                let t = executor.predict_from_isolated_calls(alg).seconds;
                if t < best_time {
                    best_time = t;
                    best = Some(i);
                }
            }
        }
        Ok(best.unwrap_or(0))
    }
}

/// Pick the algorithm with the minimum *actual* execution time (brute force /
/// empirical oracle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Oracle;

impl SelectionPolicy for Oracle {
    fn name(&self) -> String {
        "oracle".into()
    }

    fn select(
        &self,
        algorithms: &[Algorithm],
        executor: &mut dyn Executor,
    ) -> Result<usize, SelectError> {
        argmin_by_key(algorithms, |a| executor.execute_algorithm(a).seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms};
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn policies_are_object_safe_and_nameable() {
        let policies: Vec<Box<dyn SelectionPolicy>> = vec![
            Box::new(MinFlops),
            Box::new(MinPredictedTime),
            Box::new(Hybrid { flop_margin: 0.5 }),
            Box::new(Oracle),
        ];
        let algs = enumerate_chain_algorithms(&[60, 70, 80, 90, 100]).unwrap();
        let mut exec = SimulatedExecutor::paper_like();
        for p in &policies {
            assert!(!p.name().is_empty());
            let chosen = p.select(&algs, &mut exec).unwrap();
            assert!(chosen < algs.len());
        }
    }

    #[test]
    fn every_policy_reports_the_empty_set() {
        let policies: Vec<Box<dyn SelectionPolicy>> = vec![
            Box::new(MinFlops),
            Box::new(MinPredictedTime),
            Box::new(Hybrid { flop_margin: 0.5 }),
            Box::new(Oracle),
        ];
        let mut exec = SimulatedExecutor::paper_like();
        for p in &policies {
            assert_eq!(
                p.select(&[], &mut exec),
                Err(SelectError::EmptyAlgorithmSet),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn min_flops_ignores_the_executor_and_matches_the_minimum() {
        let algs = enumerate_aatb_algorithms(150, 300, 450);
        let mut exec = SimulatedExecutor::paper_like();
        let chosen = MinFlops.select(&algs, &mut exec).unwrap();
        let min = algs.iter().map(Algorithm::flops).min().unwrap();
        assert_eq!(algs[chosen].flops(), min);
    }

    #[test]
    fn hybrid_with_huge_margin_equals_min_predicted_time() {
        let algs = enumerate_aatb_algorithms(400, 100, 1100);
        let mut e1 = SimulatedExecutor::paper_like();
        let mut e2 = SimulatedExecutor::paper_like();
        let hybrid = Hybrid { flop_margin: 1.0e9 }
            .select(&algs, &mut e1)
            .unwrap();
        let predicted = MinPredictedTime.select(&algs, &mut e2).unwrap();
        assert_eq!(hybrid, predicted);
    }
}
