//! The two severity scores of Section 3.3 of the paper.

/// Time score: `(T_cheapest - T_fastest) / T_cheapest ∈ [0, 1]`.
///
/// `t_cheapest` is the shortest execution time among the *cheapest* (minimum
/// FLOP count) algorithms and `t_fastest` the shortest execution time among
/// *all* algorithms. A time score of `x` means the fastest algorithm is
/// `100·x` percent faster than the best the cheapest algorithms can do.
#[must_use]
pub fn time_score(t_cheapest: f64, t_fastest: f64) -> f64 {
    if t_cheapest <= 0.0 {
        return 0.0;
    }
    ((t_cheapest - t_fastest) / t_cheapest).clamp(0.0, 1.0)
}

/// FLOP score: `(F_fastest - F_cheapest) / F_fastest ∈ [0, 1]`.
///
/// `f_cheapest` is the FLOP count of the cheapest algorithms and `f_fastest`
/// the FLOP count of the cheapest algorithm *among the fastest* ones. A FLOP
/// score of `x` means the cheapest algorithms perform `100·x` percent fewer
/// FLOPs than the fastest algorithm.
#[must_use]
pub fn flop_score(f_cheapest: u64, f_fastest: u64) -> f64 {
    if f_fastest == 0 {
        return 0.0;
    }
    let diff = f_fastest.saturating_sub(f_cheapest) as f64;
    (diff / f_fastest as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_score_zero_when_cheapest_is_fastest() {
        assert_eq!(time_score(1.0, 1.0), 0.0);
    }

    #[test]
    fn time_score_matches_paper_example() {
        // "45% more FLOPs but 40% lower execution time": the cheapest takes
        // 1.0 s, the fastest 0.6 s.
        let s = time_score(1.0, 0.6);
        assert!((s - 0.4).abs() < 1e-12);
    }

    #[test]
    fn time_score_is_clamped() {
        assert_eq!(time_score(1.0, 2.0), 0.0); // fastest can't be slower in practice
        assert_eq!(time_score(0.0, 1.0), 0.0);
        assert_eq!(time_score(1.0, 0.0), 1.0);
    }

    #[test]
    fn flop_score_zero_when_counts_match() {
        assert_eq!(flop_score(100, 100), 0.0);
    }

    #[test]
    fn flop_score_matches_paper_example() {
        // Fastest performs 45% more FLOPs than the cheapest:
        // F_fastest = 1.45 F_cheapest  ->  score = 0.45/1.45 ≈ 0.31.
        let s = flop_score(100, 145);
        assert!((s - 45.0 / 145.0).abs() < 1e-12);
    }

    #[test]
    fn flop_score_is_safe_on_degenerate_inputs() {
        assert_eq!(flop_score(10, 0), 0.0);
        assert_eq!(flop_score(200, 100), 0.0); // cheapest can't exceed fastest's count
    }
}
