//! The closed enumeration of built-in selection strategies.
//!
//! [`Strategy`] predates the open [`SelectionPolicy`] trait and is kept as a
//! thin, `Copy`able constructor over the built-in policies: it is convenient
//! to iterate over in experiments (`for strategy in [Strategy::MinFlops,
//! ...]`) and to parse from command-line flags. New selection logic should
//! implement [`SelectionPolicy`] directly; the `lamb-plan` `Planner` accepts
//! either.

use crate::anomaly::{AlgorithmMeasurement, InstanceEvaluation};
use crate::policy::{Hybrid, MinFlops, MinPredictedTime, Oracle, SelectError, SelectionPolicy};
use lamb_expr::Algorithm;
use lamb_perfmodel::Executor;

/// An algorithm selection strategy (constructor for the built-in
/// [`SelectionPolicy`] implementations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Pick (one of) the algorithm(s) with the minimum FLOP count — the
    /// discriminant whose reliability the paper studies.
    MinFlops,
    /// Pick the algorithm whose time, predicted by summing isolated-call
    /// benchmarks (kernel performance profiles), is minimal.
    MinPredictedTime,
    /// Consider only algorithms within `flop_margin` (relative) of the
    /// minimum FLOP count, then pick the one with the best predicted time.
    Hybrid {
        /// Relative FLOP slack, e.g. `0.5` admits algorithms with up to 50%
        /// more FLOPs than the cheapest.
        flop_margin: f64,
    },
    /// Pick the algorithm with the minimum *actual* execution time (brute
    /// force / empirical oracle).
    Oracle,
}

impl Strategy {
    /// The equivalent boxed [`SelectionPolicy`].
    #[must_use]
    pub fn to_policy(&self) -> Box<dyn SelectionPolicy> {
        match *self {
            Strategy::MinFlops => Box::new(MinFlops),
            Strategy::MinPredictedTime => Box::new(MinPredictedTime),
            Strategy::Hybrid { flop_margin } => Box::new(Hybrid { flop_margin }),
            Strategy::Oracle => Box::new(Oracle),
        }
    }

    /// Short name for reports.
    #[must_use]
    pub fn name(&self) -> String {
        self.to_policy().name()
    }

    /// Select an algorithm index from `algorithms`, consulting `executor` for
    /// predictions or (for the oracle) actual executions.
    ///
    /// # Errors
    ///
    /// Returns [`SelectError::EmptyAlgorithmSet`] when `algorithms` is empty.
    pub fn select(
        &self,
        algorithms: &[Algorithm],
        executor: &mut dyn Executor,
    ) -> Result<usize, SelectError> {
        self.to_policy().select(algorithms, executor)
    }
}

/// The outcome of applying a strategy to one instance, judged against actual
/// execution times.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Strategy that was evaluated.
    pub strategy: String,
    /// Index of the chosen algorithm.
    pub chosen: usize,
    /// Actual execution time of the chosen algorithm (seconds).
    pub chosen_seconds: f64,
    /// Actual execution time of the best algorithm (seconds).
    pub best_seconds: f64,
}

impl StrategyOutcome {
    /// Relative slowdown of the chosen algorithm versus the true optimum
    /// (0 means the strategy picked a fastest algorithm).
    #[must_use]
    pub fn regret(&self) -> f64 {
        if self.best_seconds <= 0.0 {
            return 0.0;
        }
        (self.chosen_seconds - self.best_seconds).max(0.0) / self.best_seconds
    }
}

/// Evaluate a strategy on one instance: let it choose using `executor`, then
/// judge the choice against the actual execution time of every algorithm.
///
/// # Panics
///
/// Panics if `algorithms` is empty — there is nothing to evaluate. Use
/// [`Strategy::select`] directly to handle that case as an error.
pub fn evaluate_strategy(
    strategy: Strategy,
    algorithms: &[Algorithm],
    executor: &mut dyn Executor,
) -> StrategyOutcome {
    let chosen = strategy
        .select(algorithms, executor)
        .expect("cannot evaluate a strategy on an empty algorithm set");
    let timings: Vec<f64> = algorithms
        .iter()
        .map(|a| executor.execute_algorithm(a).seconds)
        .collect();
    let best_seconds = timings.iter().copied().fold(f64::INFINITY, f64::min);
    StrategyOutcome {
        strategy: strategy.name(),
        chosen,
        chosen_seconds: timings[chosen],
        best_seconds,
    }
}

/// Build an [`InstanceEvaluation`] (the anomaly-classification input) from
/// actual executions of every algorithm on one instance.
pub fn evaluate_instance(
    dims: &[usize],
    algorithms: &[Algorithm],
    executor: &mut dyn Executor,
) -> InstanceEvaluation {
    let measurements = algorithms
        .iter()
        .enumerate()
        .map(|(i, alg)| AlgorithmMeasurement {
            index: i,
            name: alg.name.clone(),
            flops: alg.flops(),
            seconds: executor.execute_algorithm(alg).seconds,
        })
        .collect();
    InstanceEvaluation {
        dims: dims.to_vec(),
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms};
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn min_flops_picks_a_cheapest_algorithm() {
        let algs = enumerate_chain_algorithms(&[100, 20, 300, 20, 500]).unwrap();
        let mut exec = SimulatedExecutor::paper_like();
        let chosen = Strategy::MinFlops.select(&algs, &mut exec).unwrap();
        let min = algs.iter().map(Algorithm::flops).min().unwrap();
        assert_eq!(algs[chosen].flops(), min);
    }

    #[test]
    fn oracle_never_has_regret() {
        let algs = enumerate_aatb_algorithms(300, 700, 900);
        let mut exec = SimulatedExecutor::paper_like();
        let outcome = evaluate_strategy(Strategy::Oracle, &algs, &mut exec);
        assert!(outcome.regret() < 1e-12);
    }

    #[test]
    fn predicted_time_is_at_least_as_good_as_min_flops_on_anomalous_instances() {
        // Pick an instance where the SYRK/SYMM route is cheapest but slower:
        // d2 much larger than d1 makes the second (GEMM vs SYMM) product dominate.
        let algs = enumerate_aatb_algorithms(400, 100, 1100);
        let mut exec = SimulatedExecutor::paper_like();
        let flops_outcome = evaluate_strategy(Strategy::MinFlops, &algs, &mut exec);
        let pred_outcome = evaluate_strategy(Strategy::MinPredictedTime, &algs, &mut exec);
        assert!(pred_outcome.regret() <= flops_outcome.regret() + 1e-9);
    }

    #[test]
    fn hybrid_with_zero_margin_reduces_to_min_flops_choice_set() {
        let algs = enumerate_aatb_algorithms(200, 300, 400);
        let mut exec = SimulatedExecutor::paper_like();
        let chosen = Strategy::Hybrid { flop_margin: 0.0 }
            .select(&algs, &mut exec)
            .unwrap();
        let min = algs.iter().map(Algorithm::flops).min().unwrap();
        assert_eq!(algs[chosen].flops(), min);
    }

    #[test]
    fn triangular_anomalies_are_classified_like_the_paper_families() {
        // Small triangular order, wide right-hand side: the FLOP-minimal
        // TRMM algorithm's FLOP rate trails GEMM by more than 2x, so the
        // cheapest and fastest sets separate — a paper-style anomaly over
        // the enlarged (TRMM-bearing) algorithm set.
        use lamb_expr::expr::Expr;
        use lamb_matrix::Uplo;
        let l = Expr::tri_var("L", 72, Uplo::Lower);
        let b = Expr::var("B", 72, 700);
        let algs = lamb_expr::enumerate_expr_algorithms(&l.mul(b)).unwrap();
        assert_eq!(algs.len(), 2);
        assert!(algs[0].kernel_summary().contains("trmm"));
        let mut exec = SimulatedExecutor::paper_like();
        let eval = evaluate_instance(&[72, 700], &algs, &mut exec);
        let c = eval.classify(0.10);
        assert_eq!(c.cheapest, vec![0], "TRMM is the FLOP-minimal algorithm");
        assert_eq!(c.fastest, vec![1], "GEMM is predicted fastest");
        assert!(c.is_anomaly, "time score {} too small", c.time_score);
        assert!(c.flop_score > 0.4, "the fastest does ~2x the FLOPs");
        // The prediction-driven strategy dodges the anomaly.
        let pred = evaluate_strategy(Strategy::MinPredictedTime, &algs, &mut exec);
        assert!(pred.regret() < 1e-9);
        let flops = evaluate_strategy(Strategy::MinFlops, &algs, &mut exec);
        assert!(flops.regret() > 0.10);
        // At large triangular orders the structured kernel is fastest and
        // the anomaly disappears.
        let l_big = Expr::tri_var("L", 2000, Uplo::Lower);
        let b_big = Expr::var("B", 2000, 700);
        let big = lamb_expr::enumerate_expr_algorithms(&l_big.mul(b_big)).unwrap();
        let eval_big = evaluate_instance(&[2000, 700], &big, &mut exec);
        assert!(!eval_big.classify(0.10).is_anomaly);
    }

    #[test]
    fn trsm_solves_select_through_every_strategy() {
        // The solve has a single realisation: every strategy agrees, with no
        // regret, and the classification degenerates gracefully.
        use lamb_expr::expr::Expr;
        use lamb_matrix::Uplo;
        let l = Expr::tri_var("L", 300, Uplo::Lower);
        let b = Expr::var("B", 300, 90);
        let algs = lamb_expr::enumerate_expr_algorithms(&l.inv().mul(b)).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(algs[0].kernel_summary(), "trsm");
        let mut exec = SimulatedExecutor::paper_like();
        for strategy in [
            Strategy::MinFlops,
            Strategy::MinPredictedTime,
            Strategy::Oracle,
        ] {
            assert_eq!(strategy.select(&algs, &mut exec).unwrap(), 0);
        }
        let eval = evaluate_instance(&[300, 90], &algs, &mut exec);
        assert!(!eval.classify(0.10).is_anomaly);
    }

    #[test]
    fn spd_gram_anomalies_are_classified_over_the_enlarged_algorithm_set() {
        // The SPD analogue of the paper's A*A^T*B regime: S[spd]*A*A^T at a
        // small symmetric order enumerates SYRK/SYMM-based algorithms
        // (FLOP-minimal) alongside GEMM-based ones (fastest) — the enlarged,
        // SPD-bearing algorithm set classifies exactly like the paper's.
        use lamb_expr::expr::Expr;
        let s = Expr::spd_var("S", 80);
        let a = Expr::var("A", 80, 514);
        let algs = lamb_expr::enumerate_expr_algorithms(&s.mul(a.clone().mul(a.t()))).unwrap();
        assert!(algs.len() > 2, "got {}", algs.len());
        assert!(algs.iter().any(|a| a.kernel_summary().contains("syrk")));
        assert!(algs.iter().any(|a| a.kernel_summary().contains("symm")));
        let mut exec = SimulatedExecutor::paper_like();
        let eval = evaluate_instance(&[80, 514], &algs, &mut exec);
        let c = eval.classify(0.10);
        assert!(c.is_anomaly, "time score {} too small", c.time_score);
        // The FLOP-minimal set is SYRK-based; the fastest is not.
        for &i in &c.cheapest {
            assert!(
                algs[i].kernel_summary().contains("syrk"),
                "{}",
                algs[i].name
            );
        }
        for &i in &c.fastest {
            assert!(
                !algs[i].kernel_summary().contains("syrk"),
                "{}",
                algs[i].name
            );
        }
        // Prediction-driven selection dodges the anomaly; FLOPs do not.
        let pred = evaluate_strategy(Strategy::MinPredictedTime, &algs, &mut exec);
        assert!(pred.regret() < 1e-9);
        let flops = evaluate_strategy(Strategy::MinFlops, &algs, &mut exec);
        assert!(flops.regret() > 0.10);
    }

    #[test]
    fn spd_solves_select_consistently_across_strategies() {
        // The pure SPD solve has a single (Cholesky) realisation: every
        // strategy agrees with zero regret, and the solve chain's competing
        // orders select without error.
        use lamb_expr::expr::Expr;
        let s = Expr::spd_var("S", 200);
        let b = Expr::var("B", 200, 60);
        let algs = lamb_expr::enumerate_expr_algorithms(&s.clone().inv().mul(b)).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(algs[0].kernel_summary(), "potrf,trsm,trsm");
        let mut exec = SimulatedExecutor::paper_like();
        for strategy in [
            Strategy::MinFlops,
            Strategy::MinPredictedTime,
            Strategy::Oracle,
        ] {
            assert_eq!(strategy.select(&algs, &mut exec).unwrap(), 0);
        }
        let eval = evaluate_instance(&[200, 60], &algs, &mut exec);
        assert!(!eval.classify(0.10).is_anomaly);
        // A solve chain offers competing orders; selection never errors and
        // the oracle has no regret.
        let c = Expr::var("C", 60, 35);
        let chain = lamb_expr::enumerate_expr_algorithms(&s.inv().mul(b2(200, 60)).mul(c)).unwrap();
        assert!(chain.len() >= 2);
        let outcome = evaluate_strategy(Strategy::Oracle, &chain, &mut exec);
        assert!(outcome.regret() < 1e-12);
    }

    fn b2(r: usize, c: usize) -> lamb_expr::expr::Expr {
        lamb_expr::expr::Expr::var("B", r, c)
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::MinFlops.name(), "min-flops");
        assert_eq!(Strategy::Oracle.name(), "oracle");
        assert!(Strategy::Hybrid { flop_margin: 0.5 }.name().contains("0.5"));
    }

    #[test]
    fn evaluate_instance_produces_one_measurement_per_algorithm() {
        let algs = enumerate_chain_algorithms(&[50, 60, 70, 80, 90]).unwrap();
        let mut exec = SimulatedExecutor::paper_like();
        let eval = evaluate_instance(&[50, 60, 70, 80, 90], &algs, &mut exec);
        assert_eq!(eval.measurements.len(), 6);
        assert!(eval.measurements.iter().all(|m| m.seconds > 0.0));
        let c = eval.classify(0.10);
        assert!(c.cheapest.len() + c.fastest.len() >= 2);
    }

    #[test]
    fn selecting_from_nothing_is_an_error_not_a_panic() {
        let mut exec = SimulatedExecutor::paper_like();
        for strategy in [
            Strategy::MinFlops,
            Strategy::MinPredictedTime,
            Strategy::Hybrid { flop_margin: 0.5 },
            Strategy::Oracle,
        ] {
            assert_eq!(
                strategy.select(&[], &mut exec),
                Err(SelectError::EmptyAlgorithmSet),
                "{}",
                strategy.name()
            );
        }
    }
}
