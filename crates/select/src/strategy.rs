//! Algorithm selection strategies.
//!
//! The paper's motivating systems (Linnea, Armadillo, Julia) select the
//! algorithm with the minimum FLOP count. Its conclusion conjectures that
//! combining FLOP counts with kernel performance profiles would predict most
//! anomalies and therefore select better algorithms. This module implements
//! both, plus an oracle, so the claim can be quantified (see the
//! `selection_strategies` bench and the `ablation_strategies` binary).

use crate::anomaly::{AlgorithmMeasurement, InstanceEvaluation};
use lamb_expr::Algorithm;
use lamb_perfmodel::Executor;

/// An algorithm selection strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Pick (one of) the algorithm(s) with the minimum FLOP count — the
    /// discriminant whose reliability the paper studies.
    MinFlops,
    /// Pick the algorithm whose time, predicted by summing isolated-call
    /// benchmarks (kernel performance profiles), is minimal.
    MinPredictedTime,
    /// Consider only algorithms within `flop_margin` (relative) of the
    /// minimum FLOP count, then pick the one with the best predicted time.
    Hybrid {
        /// Relative FLOP slack, e.g. `0.5` admits algorithms with up to 50%
        /// more FLOPs than the cheapest.
        flop_margin: f64,
    },
    /// Pick the algorithm with the minimum *actual* execution time (brute
    /// force / empirical oracle).
    Oracle,
}

impl Strategy {
    /// Short name for reports.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Strategy::MinFlops => "min-flops".into(),
            Strategy::MinPredictedTime => "min-predicted-time".into(),
            Strategy::Hybrid { flop_margin } => format!("hybrid(margin={flop_margin})"),
            Strategy::Oracle => "oracle".into(),
        }
    }

    /// Select an algorithm index from `algorithms`, consulting `executor` for
    /// predictions or (for the oracle) actual executions.
    ///
    /// # Panics
    ///
    /// Panics if `algorithms` is empty.
    pub fn select(&self, algorithms: &[Algorithm], executor: &mut dyn Executor) -> usize {
        assert!(!algorithms.is_empty(), "cannot select from an empty algorithm set");
        match self {
            Strategy::MinFlops => argmin_by_key(algorithms, |a| a.flops() as f64),
            Strategy::MinPredictedTime => argmin_by_key(algorithms, |a| {
                executor.predict_from_isolated_calls(a).seconds
            }),
            Strategy::Hybrid { flop_margin } => {
                let min_flops = algorithms.iter().map(Algorithm::flops).min().unwrap_or(0) as f64;
                let limit = min_flops * (1.0 + flop_margin.max(0.0));
                let mut best = None;
                let mut best_time = f64::INFINITY;
                for (i, alg) in algorithms.iter().enumerate() {
                    if alg.flops() as f64 <= limit {
                        let t = executor.predict_from_isolated_calls(alg).seconds;
                        if t < best_time {
                            best_time = t;
                            best = Some(i);
                        }
                    }
                }
                best.unwrap_or(0)
            }
            Strategy::Oracle => {
                argmin_by_key(algorithms, |a| executor.execute_algorithm(a).seconds)
            }
        }
    }
}

fn argmin_by_key(algorithms: &[Algorithm], mut key: impl FnMut(&Algorithm) -> f64) -> usize {
    let mut best = 0;
    let mut best_key = f64::INFINITY;
    for (i, alg) in algorithms.iter().enumerate() {
        let k = key(alg);
        if k < best_key {
            best_key = k;
            best = i;
        }
    }
    best
}

/// The outcome of applying a strategy to one instance, judged against actual
/// execution times.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Strategy that was evaluated.
    pub strategy: String,
    /// Index of the chosen algorithm.
    pub chosen: usize,
    /// Actual execution time of the chosen algorithm (seconds).
    pub chosen_seconds: f64,
    /// Actual execution time of the best algorithm (seconds).
    pub best_seconds: f64,
}

impl StrategyOutcome {
    /// Relative slowdown of the chosen algorithm versus the true optimum
    /// (0 means the strategy picked a fastest algorithm).
    #[must_use]
    pub fn regret(&self) -> f64 {
        if self.best_seconds <= 0.0 {
            return 0.0;
        }
        (self.chosen_seconds - self.best_seconds).max(0.0) / self.best_seconds
    }
}

/// Evaluate a strategy on one instance: let it choose using `executor`, then
/// judge the choice against the actual execution time of every algorithm.
pub fn evaluate_strategy(
    strategy: Strategy,
    algorithms: &[Algorithm],
    executor: &mut dyn Executor,
) -> StrategyOutcome {
    let chosen = strategy.select(algorithms, executor);
    let timings: Vec<f64> = algorithms
        .iter()
        .map(|a| executor.execute_algorithm(a).seconds)
        .collect();
    let best_seconds = timings.iter().copied().fold(f64::INFINITY, f64::min);
    StrategyOutcome {
        strategy: strategy.name(),
        chosen,
        chosen_seconds: timings[chosen],
        best_seconds,
    }
}

/// Build an [`InstanceEvaluation`] (the anomaly-classification input) from
/// actual executions of every algorithm on one instance.
pub fn evaluate_instance(
    dims: &[usize],
    algorithms: &[Algorithm],
    executor: &mut dyn Executor,
) -> InstanceEvaluation {
    let measurements = algorithms
        .iter()
        .enumerate()
        .map(|(i, alg)| AlgorithmMeasurement {
            index: i,
            name: alg.name.clone(),
            flops: alg.flops(),
            seconds: executor.execute_algorithm(alg).seconds,
        })
        .collect();
    InstanceEvaluation {
        dims: dims.to_vec(),
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms};
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn min_flops_picks_a_cheapest_algorithm() {
        let algs = enumerate_chain_algorithms(&[100, 20, 300, 20, 500]);
        let mut exec = SimulatedExecutor::paper_like();
        let chosen = Strategy::MinFlops.select(&algs, &mut exec);
        let min = algs.iter().map(Algorithm::flops).min().unwrap();
        assert_eq!(algs[chosen].flops(), min);
    }

    #[test]
    fn oracle_never_has_regret() {
        let algs = enumerate_aatb_algorithms(300, 700, 900);
        let mut exec = SimulatedExecutor::paper_like();
        let outcome = evaluate_strategy(Strategy::Oracle, &algs, &mut exec);
        assert!(outcome.regret() < 1e-12);
    }

    #[test]
    fn predicted_time_is_at_least_as_good_as_min_flops_on_anomalous_instances() {
        // Pick an instance where the SYRK/SYMM route is cheapest but slower:
        // d2 much larger than d1 makes the second (GEMM vs SYMM) product dominate.
        let algs = enumerate_aatb_algorithms(400, 100, 1100);
        let mut exec = SimulatedExecutor::paper_like();
        let flops_outcome = evaluate_strategy(Strategy::MinFlops, &algs, &mut exec);
        let pred_outcome = evaluate_strategy(Strategy::MinPredictedTime, &algs, &mut exec);
        assert!(pred_outcome.regret() <= flops_outcome.regret() + 1e-9);
    }

    #[test]
    fn hybrid_with_zero_margin_reduces_to_min_flops_choice_set() {
        let algs = enumerate_aatb_algorithms(200, 300, 400);
        let mut exec = SimulatedExecutor::paper_like();
        let chosen = Strategy::Hybrid { flop_margin: 0.0 }.select(&algs, &mut exec);
        let min = algs.iter().map(Algorithm::flops).min().unwrap();
        assert_eq!(algs[chosen].flops(), min);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::MinFlops.name(), "min-flops");
        assert_eq!(Strategy::Oracle.name(), "oracle");
        assert!(Strategy::Hybrid { flop_margin: 0.5 }.name().contains("0.5"));
    }

    #[test]
    fn evaluate_instance_produces_one_measurement_per_algorithm() {
        let algs = enumerate_chain_algorithms(&[50, 60, 70, 80, 90]);
        let mut exec = SimulatedExecutor::paper_like();
        let eval = evaluate_instance(&[50, 60, 70, 80, 90], &algs, &mut exec);
        assert_eq!(eval.measurements.len(), 6);
        assert!(eval.measurements.iter().all(|m| m.seconds > 0.0));
        let c = eval.classify(0.10);
        assert_eq!(c.cheapest.len() + c.fastest.len() >= 2, true);
    }

    #[test]
    #[should_panic(expected = "empty algorithm set")]
    fn selecting_from_nothing_panics() {
        let mut exec = SimulatedExecutor::paper_like();
        let _ = Strategy::MinFlops.select(&[], &mut exec);
    }
}
