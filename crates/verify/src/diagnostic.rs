//! The diagnostic vocabulary of the verifier: which pass spoke, how serious
//! the finding is, and where in the algorithm it points.

use lamb_expr::OperandId;
use std::fmt;

/// Identifier of the analysis pass that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassId {
    /// Def-use/SSA discipline: every intermediate is produced exactly once,
    /// used only after production, never dead; the output is produced last.
    DefUse,
    /// Shape flow: operand dimensions recomputed from the operand table
    /// conform per kernel operation.
    ShapeFlow,
    /// Structure flow: triangular/SPD/symmetry claims hold along the call
    /// sequence, including triangle-only storage states.
    StructureFlow,
    /// Cost audit: FLOP counts, written-element counts and timing keys agree
    /// with an independent recomputation from the operand table.
    CostAudit,
    /// Alias/in-place safety: no compute call reads an operand it writes.
    AliasSafety,
}

impl PassId {
    /// Stable short name used in reports (`def-use`, `shape-flow`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PassId::DefUse => "def-use",
            PassId::ShapeFlow => "shape-flow",
            PassId::StructureFlow => "structure-flow",
            PassId::CostAudit => "cost-audit",
            PassId::AliasSafety => "alias-safety",
        }
    }

    /// All passes, in the order [`crate::verify_algorithm`] runs them.
    #[must_use]
    pub fn all() -> [PassId; 5] {
        [
            PassId::DefUse,
            PassId::ShapeFlow,
            PassId::StructureFlow,
            PassId::CostAudit,
            PassId::AliasSafety,
        ]
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but sound — e.g. a redundant triangle copy or an input
    /// operand no call reads.
    Warning,
    /// The algorithm is unsound or internally inconsistent; executing it
    /// would compute the wrong value, corrupt an operand, or mis-predict.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of one pass, anchored to a call and/or an operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced this finding.
    pub pass: PassId,
    /// Severity of the finding.
    pub severity: Severity,
    /// Index into [`lamb_expr::Algorithm::calls`], when the finding is
    /// anchored to a specific call.
    pub call_index: Option<usize>,
    /// The operand the finding is about, when there is one.
    pub operand: Option<OperandId>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.pass)?;
        if let Some(i) = self.call_index {
            write!(f, " call #{i}")?;
        }
        if let Some(op) = self.operand {
            write!(f, " operand {}", op.0)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The collected findings of a verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Convenience: append an [`Severity::Error`] finding.
    pub fn error(
        &mut self,
        pass: PassId,
        call_index: Option<usize>,
        operand: Option<OperandId>,
        message: impl Into<String>,
    ) {
        self.push(Diagnostic {
            pass,
            severity: Severity::Error,
            call_index,
            operand,
            message: message.into(),
        });
    }

    /// Convenience: append a [`Severity::Warning`] finding.
    pub fn warning(
        &mut self,
        pass: PassId,
        call_index: Option<usize>,
        operand: Option<OperandId>,
        message: impl Into<String>,
    ) {
        self.push(Diagnostic {
            pass,
            severity: Severity::Warning,
            call_index,
            operand,
            message: message.into(),
        });
    }

    /// All findings, in pass order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The [`Severity::Error`] findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The [`Severity::Warning`] findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// The error findings of one specific pass — the shape negative-path
    /// tests assert on.
    pub fn errors_from(&self, pass: PassId) -> impl Iterator<Item = &Diagnostic> {
        self.errors().filter(move |d| d.pass == pass)
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is free of errors (warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// Absorb every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no diagnostics");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_partitions_errors_and_warnings() {
        let mut report = Report::new();
        assert!(report.is_clean());
        report.warning(PassId::DefUse, None, None, "an unused input");
        assert!(report.is_clean());
        report.error(PassId::ShapeFlow, Some(2), Some(OperandId(4)), "bad shape");
        assert!(report.has_errors());
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
        assert_eq!(report.errors_from(PassId::ShapeFlow).count(), 1);
        assert_eq!(report.errors_from(PassId::DefUse).count(), 0);
        let text = report.to_string();
        assert!(text.contains("error [shape-flow] call #2 operand 4: bad shape"));
        assert!(text.contains("warning [def-use]"));
    }

    #[test]
    fn pass_names_are_stable() {
        let names: Vec<&str> = PassId::all().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "def-use",
                "shape-flow",
                "structure-flow",
                "cost-audit",
                "alias-safety"
            ]
        );
    }
}
