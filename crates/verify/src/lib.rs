//! Pass-based static analyser for the lamb kernel-call IR.
//!
//! Every ranking the planner produces rests on the kernel-call algorithms the
//! enumerator emits being *sound*: operands defined before use, shapes
//! conforming, structural claims (triangular, SPD, symmetric) true along the
//! call sequence, FLOP/traffic models consistent with the operand table, and
//! no kernel reading an operand it writes. This crate checks all of that
//! statically — no numerics, no execution — and reports findings as
//! structured [`Diagnostic`]s.
//!
//! # Passes
//!
//! [`verify_algorithm`] runs five passes in order:
//!
//! 1. **def-use** ([`PassId::DefUse`]) — SSA discipline over the call
//!    sequence: intermediates produced exactly once, read only after
//!    production, never dead; the output is produced last.
//! 2. **shape-flow** ([`PassId::ShapeFlow`]) — operand dimensions recomputed
//!    from the operand table conform per kernel op, degenerate 0/1
//!    dimensions included.
//! 3. **structure-flow** ([`PassId::StructureFlow`]) — triangular/SPD
//!    declarations and triangle-only storage states are sound: TRMM/TRSM get
//!    a matching declared triangle, POTRF gets SPD, SYMM's symmetric operand
//!    is provably symmetric, triangle-only SYRK results are only read in
//!    triangle-tolerant ways.
//! 4. **cost-audit** ([`PassId::CostAudit`]) — claimed logical dimensions,
//!    FLOPs and written elements diffed against an independent recomputation;
//!    every timing key is a canonicalisation fixpoint.
//! 5. **alias-safety** ([`PassId::AliasSafety`]) — no compute kernel reads
//!    the operand it writes; the in-place triangle copy is the one sanctioned
//!    exception.
//!
//! # Example
//!
//! ```
//! use lamb_expr::{enumerate_expr_algorithms, Expr};
//! use lamb_verify::VerifyExt;
//!
//! let a = Expr::var("A", 60, 40);
//! let b = Expr::var("B", 40, 50);
//! let c = Expr::var("C", 50, 30);
//! for alg in enumerate_expr_algorithms(&a.mul(b).mul(c)).unwrap() {
//!     let report = alg.verify();
//!     assert!(report.is_clean(), "{report}");
//! }
//! ```
//!
//! Timing-table hygiene has its own entry points: [`verify_call_table`] and
//! [`verify_timing_keys`] check that every key of a [`CallTimeTable`] is
//! canonical under [`KernelOp::timing_key`], the invariant whose violation
//! silently splits one benchmark entry into several (the planner then ranks
//! on stale or missing times). [`verify_shared_flop_claim`] audits the CSE
//! pass's deduplicated (shared) FLOP totals against an independent
//! value-numbering re-derivation, catching claims that double-charge a
//! merged call or skip a distinct one.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod diagnostic;
mod passes;

pub use diagnostic::{Diagnostic, PassId, Report, Severity};
pub use passes::cost_audit::{verify_call_table, verify_shared_flop_claim, verify_timing_keys};

use lamb_expr::Algorithm;
#[cfg(doc)]
use lamb_expr::KernelOp;
#[cfg(doc)]
use lamb_perfmodel::CallTimeTable;

/// Run all five analysis passes over `alg` and collect their findings.
///
/// The report is *clean* ([`Report::is_clean`]) when no pass found an
/// [`Severity::Error`]; warnings (unused inputs, redundant copies) do not
/// make a report unclean.
#[must_use]
pub fn verify_algorithm(alg: &Algorithm) -> Report {
    let mut report = Report::new();
    passes::def_use::run(alg, &mut report);
    let shape_failed = passes::shape_flow::run(alg, &mut report);
    passes::structure_flow::run(alg, &mut report);
    passes::cost_audit::run(alg, &shape_failed, &mut report);
    passes::alias::run(alg, &mut report);
    report
}

/// Extension trait hanging [`verify_algorithm`] off [`Algorithm`] itself.
///
/// Lives here rather than on `Algorithm` directly because `lamb-verify`
/// depends on `lamb-expr` (it reads the IR); the inherent method would
/// invert that edge.
pub trait VerifyExt {
    /// Run the full verification pipeline; see [`verify_algorithm`].
    fn verify(&self) -> Report;
}

impl VerifyExt for Algorithm {
    fn verify(&self) -> Report {
        verify_algorithm(self)
    }
}

/// Debug-build gate: panic with the full report if `alg` does not verify
/// cleanly. Compiled to a no-op in release builds, so the planner and
/// enumerator can call it on every candidate without perturbing timings.
///
/// # Panics
///
/// In debug builds, when [`verify_algorithm`] reports any error.
pub fn debug_assert_verified(alg: &Algorithm) {
    if cfg!(debug_assertions) {
        let report = verify_algorithm(alg);
        assert!(
            report.is_clean(),
            "algorithm `{}` failed verification:\n{report}",
            alg.name
        );
    }
}
