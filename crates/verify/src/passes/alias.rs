//! The alias/in-place safety pass.
//!
//! The BLAS-3 kernels this IR maps to do not tolerate output/input aliasing:
//! a GEMM writing one of its own factors reads half-overwritten values. The
//! only sanctioned in-place operation is the triangle copy, which completes
//! one triangle of an operand into the other (`inputs == [x]`, `output == x`).
//! This pass rejects every other call that reads the operand it writes, and
//! checks the copy's single-input arity.

use crate::diagnostic::{PassId, Report};
use lamb_expr::{Algorithm, KernelOp};

const PASS: PassId = PassId::AliasSafety;

/// Run the pass, appending findings to `report`.
pub fn run(alg: &Algorithm, report: &mut Report) {
    for (i, call) in alg.calls.iter().enumerate() {
        if let KernelOp::CopyTriangle { .. } = call.op {
            if call.inputs.len() != 1 {
                report.error(
                    PASS,
                    Some(i),
                    None,
                    format!(
                        "triangle copy takes one input operand, call has {}",
                        call.inputs.len()
                    ),
                );
            }
            continue; // in-place (and out-of-place) copies are the sanctioned exception
        }
        if call.reads(call.output) {
            let name = alg.operand(call.output).map_or("?", |o| o.name.as_str());
            report.error(
                PASS,
                Some(i),
                Some(call.output),
                format!(
                    "{} reads operand `{name}` it also writes — in-place aliasing is unsound for this kernel",
                    call.op.mnemonic()
                ),
            );
        }
    }
}
