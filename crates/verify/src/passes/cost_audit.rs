//! The cost-audit pass.
//!
//! Everything the planner ranks on is recomputed here from first principles
//! and diffed against what the IR claims:
//!
//! * the **logical dimensions** baked into each [`KernelOp`] (`m`/`n`/`k`)
//!   must equal the dimensions derived from the operand table under the
//!   call's transposition flags;
//! * the **FLOP count** is recomputed from the derived dimensions with the
//!   paper's Section 3.1 closed forms (`2mnk`, `(n+1)nk`, `2·sym²·other`,
//!   `m²n`, `n³/3`, `0`) and diffed against [`KernelOp::flops`];
//! * the **written-element count** feeding the memory-traffic model is
//!   recomputed the same way and diffed against [`KernelOp::output_elements`];
//! * every call's [`KernelOp::timing_key`] must be a *canonicalisation
//!   fixpoint* (`key.timing_key() == key`) and must preserve the op's FLOPs
//!   and written elements — the lint for the cache-poisoning bug class where
//!   a non-canonical key splits one benchmark entry into several.
//!
//! The audit is deliberately **tile-agnostic**: every quantity it recomputes
//! is a function of the IR's logical dimensions alone. Register-tile shape
//! and cache blocking (`lamb-kernels`' `BlockConfig`, including anything
//! `calibrate --autotune` discovers) are execution details that change *how
//! fast* a call runs, never how many useful FLOPs it performs — so nothing
//! in this module accepts a blocking parameter, and retuning a machine can
//! never invalidate an audited cost claim (guarded by the
//! `tile_agnostic` integration test).
//!
//! Calls the shape pass rejected are skipped: their derived dimensions are
//! not trustworthy, and double-reporting would mis-attribute the defect.

use crate::diagnostic::{PassId, Report};
use crate::passes::{is_in_place_copy, stored};
use lamb_expr::{Algorithm, KernelOp, OperandId, OperandRole};
use lamb_matrix::Side;
use lamb_perfmodel::CallTimeTable;
use std::collections::{HashMap, HashSet};

const PASS: PassId = PassId::CostAudit;

/// Logical dimensions of a call derived from the operand table, in the same
/// layout the op claims them: `[m, n, k]` for GEMM/SYRK (SYRK ignores `m`)
/// and ORMQR, `[m, n]` for SYMM/TRMM/TRSM/QR/LASWP, `[n]` for
/// POTRF/COPY/GETRF/FACTORTRI. Packed-factor inputs carry one extra column
/// (pivots or taus), so the factor order is `cols − 1`.
fn derived_dims(alg: &Algorithm, call: &lamb_expr::KernelCall) -> Option<Vec<usize>> {
    let shape = |slot: usize| stored(alg, *call.inputs.get(slot)?);
    match call.op {
        KernelOp::Gemm { transa, transb, .. } => {
            let a = transa.apply(shape(0)?);
            let b = transb.apply(shape(1)?);
            Some(vec![a.0, b.1, a.1])
        }
        KernelOp::Syrk { trans, .. } => {
            let x = trans.apply(shape(0)?);
            Some(vec![x.0, x.1])
        }
        KernelOp::Symm { .. } | KernelOp::Trmm { .. } | KernelOp::Trsm { .. } => {
            let rhs = shape(1)?;
            Some(vec![rhs.0, rhs.1])
        }
        KernelOp::Potrf { .. } | KernelOp::CopyTriangle { .. } | KernelOp::Getrf { .. } => {
            Some(vec![shape(0)?.0])
        }
        KernelOp::Qr { .. } => {
            let a = shape(0)?;
            Some(vec![a.0, a.1])
        }
        KernelOp::Ormqr { .. } => {
            let f = shape(0)?;
            let b = shape(1)?;
            Some(vec![f.0, f.1.saturating_sub(1), b.1])
        }
        KernelOp::FactorTri { .. } => Some(vec![shape(0)?.1.saturating_sub(1)]),
        KernelOp::PivotApply { .. } => {
            let b = shape(1)?;
            Some(vec![b.0, b.1])
        }
    }
}

/// The dimensions the op itself claims, in the layout of [`derived_dims`].
fn claimed_dims(op: &KernelOp) -> Vec<usize> {
    match *op {
        KernelOp::Gemm { m, n, k, .. } => vec![m, n, k],
        KernelOp::Syrk { n, k, .. } => vec![n, k],
        KernelOp::Symm { m, n, .. } | KernelOp::Trmm { m, n, .. } | KernelOp::Trsm { m, n, .. } => {
            vec![m, n]
        }
        KernelOp::Potrf { n, .. }
        | KernelOp::CopyTriangle { n, .. }
        | KernelOp::Getrf { n }
        | KernelOp::FactorTri { n, .. } => vec![n],
        KernelOp::Qr { m, n } | KernelOp::PivotApply { m, n, .. } => vec![m, n],
        KernelOp::Ormqr { m, n, k } => vec![m, n, k],
    }
}

/// Independent FLOP recomputation (paper Section 3.1 closed forms) from the
/// *derived* dimensions.
fn expected_flops(op: &KernelOp, d: &[usize]) -> u64 {
    let at = |i: usize| d[i] as u64;
    match *op {
        KernelOp::Gemm { .. } => 2 * at(0) * at(1) * at(2),
        KernelOp::Syrk { .. } => (at(0) + 1) * at(0) * at(1),
        KernelOp::Symm { side, .. } => {
            let (sym, other) = match side {
                Side::Left => (at(0), at(1)),
                Side::Right => (at(1), at(0)),
            };
            2 * sym * sym * other
        }
        KernelOp::Trmm { side, .. } | KernelOp::Trsm { side, .. } => {
            let (order, other) = match side {
                Side::Left => (at(0), at(1)),
                Side::Right => (at(1), at(0)),
            };
            order * order * other
        }
        KernelOp::Potrf { .. } => at(0).pow(3) / 3,
        KernelOp::Getrf { .. } => 2 * at(0).pow(3) / 3,
        KernelOp::Qr { .. } => 2 * at(1) * at(1) * (3 * at(0)).saturating_sub(at(1)) / 3,
        KernelOp::Ormqr { .. } => 2 * at(1) * at(2) * (2 * at(0)).saturating_sub(at(1)),
        KernelOp::CopyTriangle { .. }
        | KernelOp::FactorTri { .. }
        | KernelOp::PivotApply { .. } => 0,
    }
}

/// Independent written-element recomputation from the *derived* dimensions.
fn expected_output_elements(op: &KernelOp, d: &[usize]) -> u64 {
    let at = |i: usize| d[i] as u64;
    match *op {
        KernelOp::Gemm { .. }
        | KernelOp::Symm { .. }
        | KernelOp::Trmm { .. }
        | KernelOp::Trsm { .. } => at(0) * at(1),
        KernelOp::Syrk { .. } | KernelOp::Potrf { .. } | KernelOp::FactorTri { .. } => {
            at(0) * (at(0) + 1) / 2
        }
        KernelOp::CopyTriangle { .. } => at(0) * at(0).saturating_sub(1) / 2,
        KernelOp::Getrf { .. } => at(0) * (at(0) + 1),
        KernelOp::Qr { .. } => at(0) * (at(1) + 1),
        KernelOp::Ormqr { .. } => at(1) * at(2),
        KernelOp::PivotApply { .. } => at(0) * at(1),
    }
}

/// Run the pass, appending findings to `report`. `shape_failed` holds the
/// call indices the shape pass rejected; those are skipped.
pub fn run(alg: &Algorithm, shape_failed: &HashSet<usize>, report: &mut Report) {
    for (i, call) in alg.calls.iter().enumerate() {
        check_timing_key(&call.op, Some(i), report);
        if shape_failed.contains(&i) {
            continue;
        }
        let Some(derived) = derived_dims(alg, call) else {
            continue; // missing operands: the def-use pass owns that finding
        };
        let claimed = claimed_dims(&call.op);
        if claimed != derived {
            report.error(
                PASS,
                Some(i),
                None,
                format!(
                    "{} claims logical dimensions {claimed:?} but the operand table implies {derived:?}",
                    call.op.mnemonic()
                ),
            );
        }
        let flops = expected_flops(&call.op, &derived);
        if call.flops() != flops {
            report.error(
                PASS,
                Some(i),
                None,
                format!(
                    "{} reports {} FLOPs but the operand table implies {flops}",
                    call.op.mnemonic(),
                    call.flops()
                ),
            );
        }
        let elements = expected_output_elements(&call.op, &derived);
        if call.op.output_elements() != elements {
            report.error(
                PASS,
                Some(i),
                None,
                format!(
                    "{} reports {} written elements but the operand table implies {elements}",
                    call.op.mnemonic(),
                    call.op.output_elements()
                ),
            );
        }
    }
}

/// Lint one operation's timing key: it must be a canonicalisation fixpoint
/// and must preserve the work the op performs. Used both per call (inside
/// [`run`]) and per table entry ([`verify_timing_keys`]).
fn check_timing_key(op: &KernelOp, call_index: Option<usize>, report: &mut Report) {
    let key = op.timing_key();
    if key.timing_key() != key {
        report.error(
            PASS,
            call_index,
            None,
            format!("timing key of `{op}` is not a canonicalisation fixpoint: `{key}` re-canonicalises to `{}`", key.timing_key()),
        );
    }
    if key.flops() != op.flops() {
        report.error(
            PASS,
            call_index,
            None,
            format!(
                "timing key `{key}` changes the FLOP count of `{op}` ({} vs {})",
                key.flops(),
                op.flops()
            ),
        );
    }
    if key.output_elements() != op.output_elements() {
        report.error(
            PASS,
            call_index,
            None,
            format!(
                "timing key `{key}` changes the written-element count of `{op}` ({} vs {})",
                key.output_elements(),
                op.output_elements()
            ),
        );
    }
}

/// Audit a *shared* (DAG-deduplicated) FLOP claim against an independent
/// value-numbering re-derivation.
///
/// The planner's CSE pass claims that an algorithm, with repeated
/// subcomputations computed once, costs `claimed_flops`. This re-derives
/// that number from the raw call sequence alone: calls are value-numbered by
/// `(operation, representative inputs)`; the first member of each class is
/// charged, later members are free — *except* a duplicate that produces the
/// algorithm's Output operand, which stays materialised (and charged) so the
/// output is still written last. A claim that double-charges a deduplicated
/// call, or fails to charge a distinct one, is reported as a cost-audit
/// error.
#[must_use]
pub fn verify_shared_flop_claim(alg: &Algorithm, claimed_flops: u64) -> Report {
    let mut report = Report::new();
    let mut repr: HashMap<OperandId, OperandId> = HashMap::new();
    let mut classes: HashMap<(KernelOp, Vec<OperandId>), OperandId> = HashMap::new();
    let mut derived: u64 = 0;
    for call in &alg.calls {
        // The in-place triangle copy is zero-FLOP and merely completes its
        // operand's storage; it neither charges nor renames anything.
        if is_in_place_copy(call) {
            continue;
        }
        let inputs: Vec<OperandId> = call
            .inputs
            .iter()
            .map(|&id| repr.get(&id).copied().unwrap_or(id))
            .collect();
        let key = (call.op.clone(), inputs);
        match classes.get(&key) {
            Some(&existing)
                if alg.operand(call.output).map(|o| o.role) != Some(OperandRole::Output) =>
            {
                // A later recomputation of an already-numbered value: free.
                repr.insert(call.output, existing);
            }
            _ => {
                classes.entry(key).or_insert(call.output);
                derived += call.flops();
            }
        }
    }
    if derived != claimed_flops {
        report.error(
            PASS,
            None,
            None,
            format!(
                "shared-FLOP claim of {claimed_flops} does not match the value-numbered \
                 re-derivation {derived} (raw total {})",
                alg.flops()
            ),
        );
    }
    report
}

/// Verify a set of kernel operations used as *timing-table keys*: each must
/// already be canonical (`op == op.timing_key()`), or two stores of the same
/// measurement would land in different entries — the PR-5 cache-poisoning bug
/// class. Also applies the per-key fixpoint/work lints of the cost audit.
pub fn verify_timing_keys<'a>(ops: impl IntoIterator<Item = &'a KernelOp>) -> Report {
    let mut report = Report::new();
    for op in ops {
        if *op != op.timing_key() {
            report.error(
                PASS,
                None,
                None,
                format!(
                    "table key `{op}` is not canonical — it should be stored as `{}`",
                    op.timing_key()
                ),
            );
        }
        check_timing_key(op, None, &mut report);
    }
    report
}

/// Verify every key of a [`CallTimeTable`] is canonical (see
/// [`verify_timing_keys`]) and every recorded time is a finite, non-negative
/// number of seconds.
#[must_use]
pub fn verify_call_table(table: &CallTimeTable) -> Report {
    let mut report = verify_timing_keys(table.entries().map(|(op, _)| op));
    for (op, seconds) in table.entries() {
        if !seconds.is_finite() || seconds < 0.0 {
            report.error(
                PASS,
                None,
                None,
                format!("table entry `{op}` has an unusable time {seconds}"),
            );
        }
    }
    report
}
