//! The def-use/SSA pass.
//!
//! The kernel-call IR is single-assignment up to one sanctioned exception:
//! the in-place triangle copy, which *updates* an operand another call
//! produced (completing a SYRK triangle to full storage) rather than defining
//! a new one. This pass checks:
//!
//! * every operand id a call references exists in the operand table, and ids
//!   are not declared twice;
//! * exactly one operand has the output role;
//! * every call reads only operands already produced (expression inputs count
//!   as produced from the start);
//! * no call writes an expression input, and every non-copy write defines its
//!   operand exactly once;
//! * an in-place copy updates an operand that has already been produced;
//! * every intermediate is read by some call (no dead intermediates), and
//!   every input is read by some call (unused inputs are warnings);
//! * the final call writes the output operand — the output is produced last.
//!
//! A call-free algorithm (a single-leaf expression returning its input) is
//! legal: it must consist of exactly the output operand.

use crate::diagnostic::{PassId, Report};
use crate::passes::is_in_place_copy;
use lamb_expr::{Algorithm, OperandId, OperandRole};
use std::collections::{HashMap, HashSet};

const PASS: PassId = PassId::DefUse;

/// Run the pass, appending findings to `report`.
pub fn run(alg: &Algorithm, report: &mut Report) {
    let mut seen_ids: HashSet<OperandId> = HashSet::new();
    for operand in &alg.operands {
        if !seen_ids.insert(operand.id) {
            report.error(
                PASS,
                None,
                Some(operand.id),
                format!(
                    "operand id declared twice in the operand table (`{}`)",
                    operand.name
                ),
            );
        }
    }

    let outputs: Vec<&_> = alg
        .operands
        .iter()
        .filter(|o| o.role == OperandRole::Output)
        .collect();
    if outputs.len() != 1 {
        report.error(
            PASS,
            None,
            None,
            format!(
                "expected exactly one output operand, found {}",
                outputs.len()
            ),
        );
    }

    let mut produced: HashSet<OperandId> = alg
        .operands
        .iter()
        .filter(|o| o.role == OperandRole::Input)
        .map(|o| o.id)
        .collect();
    let mut defined_by: HashMap<OperandId, usize> = HashMap::new();
    let mut read: HashSet<OperandId> = HashSet::new();

    for (i, call) in alg.calls.iter().enumerate() {
        for &input in &call.inputs {
            if alg.operand(input).is_none() {
                report.error(
                    PASS,
                    Some(i),
                    Some(input),
                    "call reads an operand id missing from the operand table",
                );
                continue;
            }
            if !produced.contains(&input) {
                report.error(
                    PASS,
                    Some(i),
                    Some(input),
                    "call reads an operand before any call produces it",
                );
            }
            read.insert(input);
        }
        let out = call.output;
        let Some(out_info) = alg.operand(out) else {
            report.error(
                PASS,
                Some(i),
                Some(out),
                "call writes an operand id missing from the operand table",
            );
            continue;
        };
        if out_info.role == OperandRole::Input {
            report.error(
                PASS,
                Some(i),
                Some(out),
                format!("call overwrites expression input `{}`", out_info.name),
            );
        } else if is_in_place_copy(call) {
            // An update, not a definition: the operand must already exist.
            if !produced.contains(&out) {
                report.error(
                    PASS,
                    Some(i),
                    Some(out),
                    "in-place triangle copy updates an operand no call has produced",
                );
            }
        } else if let Some(&first) = defined_by.get(&out) {
            report.error(
                PASS,
                Some(i),
                Some(out),
                format!(
                    "operand `{}` produced more than once (first at call #{first}) — SSA violation",
                    out_info.name
                ),
            );
        } else {
            defined_by.insert(out, i);
            produced.insert(out);
        }
    }

    for operand in &alg.operands {
        match operand.role {
            OperandRole::Intermediate => {
                if !read.contains(&operand.id) {
                    report.error(
                        PASS,
                        defined_by.get(&operand.id).copied(),
                        Some(operand.id),
                        format!(
                            "dead intermediate `{}`: produced but never read",
                            operand.name
                        ),
                    );
                }
                if !defined_by.contains_key(&operand.id) {
                    report.error(
                        PASS,
                        None,
                        Some(operand.id),
                        format!("intermediate `{}` is never produced", operand.name),
                    );
                }
            }
            OperandRole::Input => {
                if !read.contains(&operand.id) && !alg.calls.is_empty() {
                    report.warning(
                        PASS,
                        None,
                        Some(operand.id),
                        format!("input `{}` is never read by any call", operand.name),
                    );
                }
            }
            OperandRole::Output => {}
        }
    }

    match (alg.calls.last(), outputs.first()) {
        (Some(last), Some(output)) => {
            if last.output != output.id {
                report.error(
                    PASS,
                    Some(alg.calls.len() - 1),
                    Some(output.id),
                    "the final call does not write the output operand — the output is not produced last",
                );
            }
        }
        (None, Some(output)) => {
            // Call-free identity algorithm: legal only as a bare pass-through
            // of a single operand.
            if alg.operands.len() != 1 {
                report.error(
                    PASS,
                    None,
                    Some(output.id),
                    "a call-free algorithm must consist of exactly its output operand",
                );
            }
        }
        (_, None) => {} // already reported above
    }
}
