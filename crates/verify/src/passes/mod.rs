//! The five analysis passes, each a function from an [`Algorithm`] to
//! findings appended onto a [`Report`](crate::Report).
//!
//! Pass order matters only for the cost audit, which skips calls the shape
//! pass already rejected (a call whose operands do not even conform has no
//! trustworthy derived dimensions to audit costs against). All other passes
//! are independent.

pub mod alias;
pub mod cost_audit;
pub mod def_use;
pub mod shape_flow;
pub mod structure_flow;

use lamb_expr::{Algorithm, KernelCall, KernelOp, OperandId};

/// Stored `(rows, cols)` of `id` in the operand table, if present. Passes
/// treat a missing operand as already reported by the def-use pass and skip.
pub(crate) fn stored(alg: &Algorithm, id: OperandId) -> Option<(usize, usize)> {
    alg.operand(id).map(|o| (o.rows, o.cols))
}

/// Whether `call` is the in-place spelling of the triangle copy: the engine
/// completes a SYRK-produced triangle to a full matrix by re-writing the same
/// operand (`inputs == [x]`, `output == x`). The out-of-place spelling (a
/// distinct output operand, as used by isolated-call benchmarks) is a plain
/// definition instead.
pub(crate) fn is_in_place_copy(call: &KernelCall) -> bool {
    matches!(call.op, KernelOp::CopyTriangle { .. }) && call.inputs.first() == Some(&call.output)
}

/// `"rows x cols"` for messages.
pub(crate) fn dims(shape: (usize, usize)) -> String {
    format!("{}x{}", shape.0, shape.1)
}
