//! The shape-flow pass.
//!
//! Every call's operand dimensions are recomputed *from the operand table*
//! (applying the call's transposition flags) and checked for conformance per
//! [`KernelOp`] — inner dimensions must match, structured operands must be
//! square, and the output operand's declared shape must equal the shape the
//! input operands imply. The pass deliberately ignores the dimensions the
//! `KernelOp` itself claims (`m`/`n`/`k`): those belong to the cost audit,
//! which diffs them against the table-derived truth. Degenerate (0/1)
//! dimensions are ordinary values here — conformance is checked, nothing
//! underflows.
//!
//! On success the pass returns, per call, the set of call indices that failed
//! shape checks so the cost audit can skip them.

use crate::diagnostic::{PassId, Report};
use crate::passes::{dims, stored};
use lamb_expr::{Algorithm, KernelOp};
use lamb_matrix::Side;
use std::collections::HashSet;

const PASS: PassId = PassId::ShapeFlow;

/// Expected number of inputs for each operation in this IR.
fn arity(op: &KernelOp) -> usize {
    match op {
        KernelOp::Gemm { .. }
        | KernelOp::Symm { .. }
        | KernelOp::Trmm { .. }
        | KernelOp::Trsm { .. }
        | KernelOp::Ormqr { .. }
        | KernelOp::PivotApply { .. } => 2,
        KernelOp::Syrk { .. }
        | KernelOp::Potrf { .. }
        | KernelOp::Getrf { .. }
        | KernelOp::Qr { .. }
        | KernelOp::FactorTri { .. }
        | KernelOp::CopyTriangle { .. } => 1,
    }
}

/// Run the pass. Returns the indices of calls with shape errors (for the
/// cost audit to skip).
pub fn run(alg: &Algorithm, report: &mut Report) -> HashSet<usize> {
    let mut failed: HashSet<usize> = HashSet::new();
    for i in 0..alg.calls.len() {
        let before = report.errors_from(PASS).count();
        check_call(alg, i, report);
        if report.errors_from(PASS).count() > before {
            failed.insert(i);
        }
    }
    failed
}

#[allow(clippy::too_many_lines)]
fn check_call(alg: &Algorithm, i: usize, report: &mut Report) {
    let call = &alg.calls[i];
    let expected = arity(&call.op);
    if call.inputs.len() != expected {
        report.error(
            PASS,
            Some(i),
            None,
            format!(
                "{} takes {expected} input operand(s), call has {}",
                call.op.mnemonic(),
                call.inputs.len()
            ),
        );
        return;
    }
    // Operand-table misses are the def-use pass's finding; treat them as
    // shape failures here only to keep the cost audit away from the call.
    let Some(shapes) = call
        .inputs
        .iter()
        .map(|&id| stored(alg, id))
        .collect::<Option<Vec<_>>>()
    else {
        report.error(
            PASS,
            Some(i),
            None,
            "call references operands missing from the table",
        );
        return;
    };
    let Some(out) = stored(alg, call.output) else {
        report.error(
            PASS,
            Some(i),
            Some(call.output),
            "output operand missing from the table",
        );
        return;
    };

    let require_square = |shape: (usize, usize), what: &str, report: &mut Report| -> bool {
        if shape.0 != shape.1 {
            report.error(
                PASS,
                Some(i),
                None,
                format!("{what} must be square, got {}", dims(shape)),
            );
            false
        } else {
            true
        }
    };
    let check_out = |implied: (usize, usize), report: &mut Report| {
        if out != implied {
            report.error(
                PASS,
                Some(i),
                Some(call.output),
                format!(
                    "output operand is {} but the input operands imply {}",
                    dims(out),
                    dims(implied)
                ),
            );
        }
    };

    match call.op {
        KernelOp::Gemm { transa, transb, .. } => {
            let a = transa.apply(shapes[0]);
            let b = transb.apply(shapes[1]);
            if a.1 != b.0 {
                report.error(
                    PASS,
                    Some(i),
                    None,
                    format!(
                        "gemm inner dimensions do not conform: op(A) is {}, op(B) is {}",
                        dims(a),
                        dims(b)
                    ),
                );
                return;
            }
            check_out((a.0, b.1), report);
        }
        KernelOp::Syrk { trans, .. } => {
            let x = trans.apply(shapes[0]);
            check_out((x.0, x.0), report);
        }
        KernelOp::Symm { side, .. } => {
            let sym = shapes[0];
            let rect = shapes[1];
            if !require_square(sym, "symm symmetric operand", report) {
                return;
            }
            let needed = match side {
                Side::Left => rect.0,
                Side::Right => rect.1,
            };
            if sym.0 != needed {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!(
                        "symm symmetric operand has order {} but the {side:?}-side product needs order {needed}",
                        sym.0
                    ),
                );
                return;
            }
            check_out(rect, report);
        }
        KernelOp::Trmm { side, .. } | KernelOp::Trsm { side, .. } => {
            let tri = shapes[0];
            let rhs = shapes[1];
            if !require_square(tri, "triangular operand", report) {
                return;
            }
            let needed = match side {
                Side::Left => rhs.0,
                Side::Right => rhs.1,
            };
            if tri.0 != needed {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!(
                        "triangular operand has order {} but the {side:?}-side product needs order {needed}",
                        tri.0
                    ),
                );
                return;
            }
            check_out(rhs, report);
        }
        KernelOp::Potrf { .. } => {
            let s = shapes[0];
            if !require_square(s, "potrf operand", report) {
                return;
            }
            check_out(s, report);
        }
        KernelOp::CopyTriangle { .. } => {
            let x = shapes[0];
            if !require_square(x, "triangle-copy operand", report) {
                return;
            }
            check_out(x, report);
        }
        KernelOp::Getrf { .. } => {
            let s = shapes[0];
            if !require_square(s, "getrf operand", report) {
                return;
            }
            // Packed factor: L\U in the square block, pivot indices in an
            // extra trailing column.
            check_out((s.0, s.1 + 1), report);
        }
        KernelOp::Qr { .. } => {
            let s = shapes[0];
            if s.0 < s.1 {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!("qr requires a tall operand (rows ≥ cols), got {}", dims(s)),
                );
                return;
            }
            // Packed factor: V below the diagonal, R on/above, taus in an
            // extra trailing column.
            check_out((s.0, s.1 + 1), report);
        }
        KernelOp::FactorTri { uplo, .. } => {
            // Extracts an n×n triangle from a packed factor of n+1 columns.
            let f = shapes[0];
            if f.1 == 0 {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    "factortri input has zero columns — not a packed factor",
                );
                return;
            }
            let n = f.1 - 1;
            if f.0 < n {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!(
                        "factortri input {} is too short for an order-{n} triangle",
                        dims(f)
                    ),
                );
                return;
            }
            if uplo == lamb_matrix::Uplo::Lower && f.0 != n {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!(
                        "factortri(lower) expects a square packed LU factor, got {}",
                        dims(f)
                    ),
                );
                return;
            }
            check_out((n, n), report);
        }
        KernelOp::Ormqr { .. } => {
            // inputs: [packed QR factor (m, n+1), rhs (m, k)] → (n, k).
            let f = shapes[0];
            let b = shapes[1];
            if f.1 == 0 {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    "ormqr factor input has zero columns — not a packed factor",
                );
                return;
            }
            let (m, n) = (f.0, f.1 - 1);
            if m < n {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!("ormqr factor {} is wider than tall", dims(f)),
                );
                return;
            }
            if b.0 != m {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[1]),
                    format!(
                        "ormqr right-hand side has {} rows but the factor implies {m}",
                        b.0
                    ),
                );
                return;
            }
            check_out((n, b.1), report);
        }
        KernelOp::PivotApply { side, .. } => {
            // inputs: [packed LU factor (r, r+1), rhs] → rhs shape. The pivot
            // order must match the rhs rows (`Left`, row swaps) or columns
            // (`Right`, reverse-order column swaps).
            let f = shapes[0];
            let b = shapes[1];
            if f.1 != f.0 + 1 {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[0]),
                    format!(
                        "laswp pivot source {} is not a packed square LU factor",
                        dims(f)
                    ),
                );
                return;
            }
            let (needed, what) = match side {
                Side::Left => (b.0, "rows"),
                Side::Right => (b.1, "columns"),
            };
            if needed != f.0 {
                report.error(
                    PASS,
                    Some(i),
                    Some(call.inputs[1]),
                    format!(
                        "laswp operand has {needed} {what} but the {side:?}-side pivot vector has length {}",
                        f.0
                    ),
                );
                return;
            }
            check_out(b, report);
        }
    }
}
