//! The structure-flow pass.
//!
//! Tracks two properties per operand along the call sequence and checks every
//! structural claim a call or the operand table makes:
//!
//! * **storage state** — [`Full`](State::Full) (every element explicit) or
//!   [`TriangleOnly`](State::TriangleOnly) (only one triangle holds values, as
//!   SYRK leaves its result). A triangle-only operand may only be read by a
//!   SYMM whose `uplo` matches the stored triangle, or completed by a triangle
//!   copy; any full-matrix read (GEMM, TRMM/TRSM, SYRK, POTRF, a SYMM's
//!   rectangular side) is unsound.
//! * **symmetry** — whether the operand's *values* are known symmetric: SPD
//!   inputs, SYRK results, Gram products computed by GEMM (`X·Xᵀ`: both
//!   inputs the same operand with opposite transposition), and triangle
//!   copies thereof. SYMM's symmetric operand must be in this set.
//!
//! On top of the flow state the pass checks the *declared* structure of the
//! operand table: TRMM/TRSM require a declared-triangular operand whose
//! stored triangle matches the call's `uplo`; POTRF requires a declared-SPD
//! operand and a factor declared triangular in the factored `uplo`; and any
//! intermediate declared triangular must be justified by its producing call
//! (a POTRF factor, a FACTORTRI extraction, or a same-effective-triangle
//! product/solve).
//!
//! A third tracked property covers the general-solver tier: **packed
//! factors**. GETRF and QR write factors in packed form (L\U plus a pivot
//! column; V\R plus a tau column) that are *not* ordinary matrices. Only the
//! dedicated readers may touch them — FACTORTRI (triangle extraction), LASWP
//! (pivot application, LU factors only) and ORMQR (Qᵀ application, QR factors
//! only). Any other read — a GEMM on a packed factor, a LASWP whose pivot
//! source is not a GETRF result (a forged pivot vector), an ORMQR driven by
//! an LU factor — is unsound and reported here. Algorithm *inputs* are
//! trusted as externally supplied packed factors (the factor-cache boundary
//! and the isolated-call benchmark fixtures); only intermediates need a
//! factorisation call as provenance.

use crate::diagnostic::{PassId, Report};
use crate::passes::is_in_place_copy;
use lamb_expr::{Algorithm, KernelOp, OperandId, OperandRole};
use lamb_matrix::{Structure, Uplo};
use std::collections::{HashMap, HashSet};

const PASS: PassId = PassId::StructureFlow;

/// Storage state of an operand's values at a point in the call sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Every element is explicit (general, triangular-with-zeros, or full
    /// symmetric storage).
    Full,
    /// Only the given triangle holds values (a SYRK result before its
    /// completing copy).
    TriangleOnly(Uplo),
}

/// Which factorisation produced a packed factor operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Packed {
    /// A GETRF result: L\U with the pivot indices in a trailing column.
    Lu,
    /// A QR result: V\R with the Householder taus in a trailing column.
    Qr,
}

impl Packed {
    fn tag(self) -> &'static str {
        match self {
            Packed::Lu => "LU",
            Packed::Qr => "QR",
        }
    }
}

struct Flow {
    state: HashMap<OperandId, State>,
    symmetric: HashSet<OperandId>,
    packed: HashMap<OperandId, Packed>,
}

impl Flow {
    fn state(&self, id: OperandId) -> State {
        *self.state.get(&id).unwrap_or(&State::Full)
    }
}

/// The triangle `id`'s *declared* structure stores, if any.
fn declared_triangle(alg: &Algorithm, id: OperandId) -> Option<Uplo> {
    alg.operand(id).and_then(|o| o.structure.triangle())
}

/// Run the pass, appending findings to `report`.
pub fn run(alg: &Algorithm, report: &mut Report) {
    let mut flow = Flow {
        state: HashMap::new(),
        symmetric: HashSet::new(),
        packed: HashMap::new(),
    };
    for operand in &alg.operands {
        if operand.role == OperandRole::Input && operand.structure.is_spd() {
            flow.symmetric.insert(operand.id);
        }
    }

    for i in 0..alg.calls.len() {
        check_reads(alg, i, &flow, report);
        check_call(alg, i, &mut flow, report);
    }

    if let Some(output) = alg.operands.iter().find(|o| o.role == OperandRole::Output) {
        if let State::TriangleOnly(u) = flow.state(output.id) {
            let message = format!(
                "the algorithm output is left triangle-only ({} triangle) — the final result must be completed to full storage",
                u.tag()
            );
            if alg.calls.len() <= 1 {
                // The isolated-call benchmark spelling: a bare SYRK timed on
                // its own legitimately returns only the triangle it computes.
                report.warning(PASS, None, Some(output.id), message);
            } else {
                report.error(PASS, None, Some(output.id), message);
            }
        }
    }
}

/// Reject full-matrix reads of triangle-only operands. SYMM's symmetric side
/// and the in-place triangle copy are the two triangle-tolerant readers and
/// are checked in [`check_call`] instead.
fn check_reads(alg: &Algorithm, i: usize, flow: &Flow, report: &mut Report) {
    let call = &alg.calls[i];
    for (slot, &input) in call.inputs.iter().enumerate() {
        // Both copy spellings read the triangle they complete; uplo matching
        // for them happens in `check_call`.
        let triangle_tolerant = match call.op {
            KernelOp::Symm { .. } => slot == 0,
            KernelOp::CopyTriangle { .. } => true,
            _ => false,
        };
        if triangle_tolerant {
            continue;
        }
        if let State::TriangleOnly(u) = flow.state(input) {
            let name = alg.operand(input).map_or("?", |o| o.name.as_str());
            report.error(
                PASS,
                Some(i),
                Some(input),
                format!(
                    "{} reads `{name}` as a full matrix, but only its {} triangle has been written (missing triangle copy)",
                    call.op.mnemonic(),
                    u.tag()
                ),
            );
        }
    }
    // Packed factors may only be read by their dedicated consumers; kind
    // mismatches (laswp on a QR factor, ormqr on an LU factor) are caught in
    // `check_call` where the kind requirement is known.
    for (slot, &input) in call.inputs.iter().enumerate() {
        let packed_tolerant = matches!(
            call.op,
            KernelOp::FactorTri { .. } | KernelOp::PivotApply { .. } | KernelOp::Ormqr { .. }
        ) && slot == 0;
        if packed_tolerant {
            continue;
        }
        if let Some(kind) = flow.packed.get(&input) {
            let name = alg.operand(input).map_or("?", |o| o.name.as_str());
            report.error(
                PASS,
                Some(i),
                Some(input),
                format!(
                    "{} reads `{name}`, a packed {} factor, as an ordinary matrix",
                    call.op.mnemonic(),
                    kind.tag()
                ),
            );
        }
    }
}

#[allow(clippy::too_many_lines)]
fn check_call(alg: &Algorithm, i: usize, flow: &mut Flow, report: &mut Report) {
    let call = &alg.calls[i];
    let out = call.output;
    // Overwriting an operand clears any packed-factor marking (GETRF/QR
    // re-insert theirs below).
    if !is_in_place_copy(call) {
        flow.packed.remove(&out);
    }
    // Does the producing call justify a `Triangular` declaration on its
    // output operand? `None` means the op can never produce a triangular
    // result; `Some(u)` is the triangle it provably produces.
    let mut justified_triangle: Option<Uplo> = None;

    match call.op {
        KernelOp::Syrk { uplo, .. } => {
            flow.state.insert(out, State::TriangleOnly(uplo));
            flow.symmetric.insert(out);
            if let Some(u) = declared_triangle(alg, out) {
                report.error(
                    PASS,
                    Some(i),
                    Some(out),
                    format!(
                        "syrk output is declared triangular ({}) but its values are symmetric, not triangular",
                        u.tag()
                    ),
                );
            }
        }
        KernelOp::Gemm { transa, transb, .. } => {
            flow.state.insert(out, State::Full);
            if call.inputs.len() == 2 {
                if call.inputs[0] == call.inputs[1] && transa != transb {
                    // A Gram product X·Xᵀ computed in full by GEMM.
                    flow.symmetric.insert(out);
                }
                let ta = call.inputs[0] != call.inputs[1] || transa == transb;
                // Same-triangle products stay triangular (exact zeros flow
                // through GEMM's explicit-zero triangles).
                let a_tri = declared_triangle(alg, call.inputs[0]).map(|u| u.under(transa));
                let b_tri = declared_triangle(alg, call.inputs[1]).map(|u| u.under(transb));
                if ta {
                    if let (Some(a), Some(b)) = (a_tri, b_tri) {
                        if a == b {
                            justified_triangle = Some(a);
                        }
                    }
                }
            }
        }
        KernelOp::Symm { uplo, .. } => {
            flow.state.insert(out, State::Full);
            let sym = call.inputs[0];
            if !flow.symmetric.contains(&sym) {
                let name = alg.operand(sym).map_or("?", |o| o.name.as_str());
                report.error(
                    PASS,
                    Some(i),
                    Some(sym),
                    format!(
                        "symm's symmetric operand `{name}` is not known symmetric (not SPD, not a Gram product, not a syrk result)"
                    ),
                );
            }
            if let State::TriangleOnly(stored) = flow.state(sym) {
                if stored != uplo {
                    report.error(
                        PASS,
                        Some(i),
                        Some(sym),
                        format!(
                            "symm reads the {} triangle but only the {} triangle of its symmetric operand has been written",
                            uplo.tag(),
                            stored.tag()
                        ),
                    );
                }
            }
        }
        KernelOp::Trmm { uplo, trans, .. } | KernelOp::Trsm { uplo, trans, .. } => {
            flow.state.insert(out, State::Full);
            let tri_id = call.inputs[0];
            match declared_triangle(alg, tri_id) {
                None => {
                    let name = alg.operand(tri_id).map_or("?", |o| o.name.as_str());
                    report.error(
                        PASS,
                        Some(i),
                        Some(tri_id),
                        format!(
                            "{} requires a triangular operand, but `{name}` is not declared triangular",
                            call.op.mnemonic()
                        ),
                    );
                }
                Some(stored) if stored != uplo => {
                    report.error(
                        PASS,
                        Some(i),
                        Some(tri_id),
                        format!(
                            "{} expects the {} triangle stored, but the operand declares the {} triangle",
                            call.op.mnemonic(),
                            uplo.tag(),
                            stored.tag()
                        ),
                    );
                }
                Some(_) => {
                    // op(L) effectively occupies uplo.under(trans); the
                    // product/solve stays triangular when the right-hand
                    // side occupies the same triangle.
                    let effective = uplo.under(trans);
                    if call.inputs.len() == 2
                        && declared_triangle(alg, call.inputs[1]) == Some(effective)
                    {
                        justified_triangle = Some(effective);
                    }
                }
            }
        }
        KernelOp::Potrf { uplo, .. } => {
            flow.state.insert(out, State::Full);
            let s = call.inputs[0];
            let spd = alg.operand(s).is_some_and(|o| o.structure.is_spd());
            if !spd {
                let name = alg.operand(s).map_or("?", |o| o.name.as_str());
                report.error(
                    PASS,
                    Some(i),
                    Some(s),
                    format!("potrf requires a declared-SPD operand, but `{name}` is not SPD"),
                );
            }
            justified_triangle = Some(uplo);
            if declared_triangle(alg, out) != Some(uplo) {
                report.error(
                    PASS,
                    Some(i),
                    Some(out),
                    format!(
                        "potrf factor must be declared triangular in the factored triangle ({})",
                        uplo.tag()
                    ),
                );
            }
        }
        KernelOp::Getrf { .. } => {
            flow.state.insert(out, State::Full);
            flow.packed.insert(out, Packed::Lu);
        }
        KernelOp::Qr { .. } => {
            flow.state.insert(out, State::Full);
            flow.packed.insert(out, Packed::Qr);
        }
        KernelOp::FactorTri { uplo, .. } => {
            flow.state.insert(out, State::Full);
            let f = call.inputs[0];
            let from_outside = alg.operand(f).is_some_and(|o| o.role == OperandRole::Input);
            match flow.packed.get(&f).copied() {
                None if !from_outside => {
                    let name = alg.operand(f).map_or("?", |o| o.name.as_str());
                    report.error(
                        PASS,
                        Some(i),
                        Some(f),
                        format!(
                            "factortri input `{name}` is not a packed factor produced by getrf or qr"
                        ),
                    );
                }
                None => {}
                Some(Packed::Qr) if uplo == Uplo::Lower => {
                    report.error(
                        PASS,
                        Some(i),
                        Some(f),
                        "factortri(lower) on a packed QR factor: the sub-diagonal holds Householder vectors, not a triangular factor",
                    );
                }
                Some(_) => {}
            }
            justified_triangle = Some(uplo);
            if declared_triangle(alg, out) != Some(uplo) {
                report.error(
                    PASS,
                    Some(i),
                    Some(out),
                    format!(
                        "factortri output must be declared triangular in the extracted triangle ({})",
                        uplo.tag()
                    ),
                );
            }
        }
        KernelOp::PivotApply { .. } => {
            flow.state.insert(out, State::Full);
            let f = call.inputs[0];
            let from_outside = alg.operand(f).is_some_and(|o| o.role == OperandRole::Input);
            if flow.packed.get(&f) != Some(&Packed::Lu) && !from_outside {
                let name = alg.operand(f).map_or("?", |o| o.name.as_str());
                report.error(
                    PASS,
                    Some(i),
                    Some(f),
                    format!(
                        "laswp pivot source `{name}` is not a packed LU factor produced by getrf — pivot indices cannot be trusted"
                    ),
                );
            }
        }
        KernelOp::Ormqr { .. } => {
            flow.state.insert(out, State::Full);
            let f = call.inputs[0];
            let from_outside = alg.operand(f).is_some_and(|o| o.role == OperandRole::Input);
            if flow.packed.get(&f) != Some(&Packed::Qr) && !from_outside {
                let name = alg.operand(f).map_or("?", |o| o.name.as_str());
                report.error(
                    PASS,
                    Some(i),
                    Some(f),
                    format!(
                        "ormqr factor `{name}` is not a packed QR factor produced by qr — Householder vectors cannot be trusted"
                    ),
                );
            }
        }
        KernelOp::CopyTriangle { uplo, .. } => {
            if is_in_place_copy(call) {
                match flow.state(call.output) {
                    State::TriangleOnly(stored) => {
                        if stored != uplo {
                            report.error(
                                PASS,
                                Some(i),
                                Some(call.output),
                                format!(
                                    "triangle copy completes the {} triangle, but only the {} triangle has been written",
                                    uplo.tag(),
                                    stored.tag()
                                ),
                            );
                        }
                        flow.state.insert(call.output, State::Full);
                    }
                    State::Full => {
                        if flow.symmetric.contains(&call.output) {
                            report.warning(
                                PASS,
                                Some(i),
                                Some(call.output),
                                "redundant triangle copy: the operand is already full symmetric",
                            );
                        } else {
                            report.error(
                                PASS,
                                Some(i),
                                Some(call.output),
                                "in-place triangle copy of a non-symmetric full operand overwrites half its values",
                            );
                        }
                    }
                }
            } else {
                // Out-of-place: symmetrise the source's `uplo` triangle into
                // a fresh operand (the isolated-call benchmark spelling).
                flow.state.insert(out, State::Full);
                if let State::TriangleOnly(stored) = flow.state(call.inputs[0]) {
                    if stored != uplo {
                        report.error(
                            PASS,
                            Some(i),
                            Some(call.inputs[0]),
                            format!(
                                "triangle copy reads the {} triangle, but only the {} triangle of its source has been written",
                                uplo.tag(),
                                stored.tag()
                            ),
                        );
                    }
                }
                flow.symmetric.insert(out);
            }
        }
    }

    // Any triangular declaration on a *written* operand must be justified by
    // the call that produces it (POTRF factors and same-triangle products).
    if !is_in_place_copy(call) {
        if let Some(out_info) = alg.operand(out) {
            if out_info.role != OperandRole::Input {
                if let Structure::Triangular(declared) = out_info.structure {
                    if !matches!(call.op, KernelOp::Syrk { .. })
                        && justified_triangle != Some(declared)
                    {
                        report.error(
                            PASS,
                            Some(i),
                            Some(out),
                            format!(
                                "operand `{}` is declared triangular ({}) but its producing call does not justify that structure",
                                out_info.name,
                                declared.tag()
                            ),
                        );
                    }
                }
            }
        }
    }
}
