//! Property-based numerical identity of the CSE rewrite.
//!
//! For randomly dimensioned chain / transpose-Gram / triangular / SPD
//! expressions, every enumerated algorithm must compute the *same matrix*
//! after common-subexpression elimination as before it (within `1e-10` of
//! the result's magnitude — in practice the merged calls reproduce the
//! deduplicated values bit-for-bit), and every transformed algorithm must
//! still verify clean. This is the semantic half of the CSE contract; the
//! cost half (shared-FLOP claims) is audited in `shared_flops.rs`.

use lamb_expr::{eliminate_common_subexpressions, enumerate_expr_algorithms, Expr};
use lamb_matrix::ops::{max_abs, max_abs_diff};
use lamb_matrix::Uplo;
use lamb_perfmodel::MeasuredExecutor;
use lamb_verify::verify_algorithm;
use proptest::prelude::*;

/// Check every enumerated algorithm of `expr`: the CSE form verifies clean
/// and executes to the same result as the original.
fn assert_cse_preserves_numerics(expr: &Expr, what: &str) -> Result<(), TestCaseError> {
    let executor = MeasuredExecutor::quick();
    for alg in enumerate_expr_algorithms(expr).unwrap() {
        let outcome = eliminate_common_subexpressions(&alg);
        let report = verify_algorithm(&outcome.algorithm);
        prop_assert!(
            report.is_clean(),
            "{what}: CSE form of `{}` failed verification:\n{report}",
            alg.name
        );
        let original = executor.compute_result(&alg);
        let shared = executor.compute_result(&outcome.algorithm);
        let diff = max_abs_diff(&original, &shared).expect("identical output shape");
        let tolerance = 1e-10 * max_abs(&original).max(1.0);
        prop_assert!(
            diff <= tolerance,
            "{what}: CSE changed the numerics of `{}`: |diff| = {diff:e} > {tolerance:e}",
            alg.name
        );
    }
    Ok(())
}

fn uplo_of(raw: usize) -> Uplo {
    if raw == 0 {
        Uplo::Lower
    } else {
        Uplo::Upper
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chains_survive_cse_numerically(
        d in [1usize..24, 1usize..24, 1usize..24, 1usize..24, 1usize..24],
    ) {
        let expr = Expr::var("A", d[0], d[1])
            .mul(Expr::var("B", d[1], d[2]))
            .mul(Expr::var("C", d[2], d[3]))
            .mul(Expr::var("D", d[3], d[4]));
        assert_cse_preserves_numerics(&expr, "chain")?;
    }

    #[test]
    fn repeated_gram_products_survive_cse_numerically(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
    ) {
        // A·Aᵀ appears twice: the expression family whose orderings CSE
        // genuinely rewrites (one SYRK instead of two).
        let a = Expr::var("A", m, k);
        let expr = a
            .clone()
            .mul(a.clone().t())
            .mul(a.clone())
            .mul(a.t())
            .mul(Expr::var("B", m, n));
        assert_cse_preserves_numerics(&expr, "repeated gram")?;
    }

    #[test]
    fn triangular_chains_survive_cse_numerically(
        n in 1usize..24,
        m in 1usize..24,
        raw_uplo in 0usize..2,
    ) {
        let l = Expr::tri_var("L", n, uplo_of(raw_uplo));
        let expr = l.clone().mul(l).mul(Expr::var("B", n, m));
        assert_cse_preserves_numerics(&expr, "triangular chain")?;
    }

    #[test]
    fn repeated_spd_solves_survive_cse_numerically(
        n in 1usize..20,
        m in 1usize..20,
    ) {
        // S⁻¹·S⁻¹·B repeats the whole Cholesky (POTRF + TRSM halves); the
        // CSE form factors once.
        let s = Expr::spd_var("S", n);
        let expr = s.clone().inv().mul(s.inv()).mul(Expr::var("B", n, m));
        assert_cse_preserves_numerics(&expr, "repeated spd solve")?;
    }
}
