//! Negative-path coverage: one seeded mutation per analysis pass, each
//! asserting that the *intended* pass rejects it, anchored to the mutated
//! call. Mutations are applied to algorithms the real enumerators produced,
//! so everything else about the IR stays legitimate.

use lamb_expr::{
    enumerate_aatb_algorithms, enumerate_chain_algorithms, enumerate_expr_algorithms, Algorithm,
    Expr, KernelOp, OperandId, OperandInfo, OperandRole,
};
use lamb_matrix::{Side, Structure, Trans, Uplo};
use lamb_perfmodel::calibrate::single_call_algorithm;
use lamb_perfmodel::CallTimeTable;
use lamb_verify::{verify_algorithm, verify_call_table, verify_timing_keys, PassId};

/// A four-matrix chain algorithm — pure GEMM, structurally trivial, ideal
/// for mutations that should trip exactly one pass.
fn chain_algorithm() -> Algorithm {
    enumerate_chain_algorithms(&[60, 50, 40, 30, 20])
        .unwrap()
        .into_iter()
        .next()
        .unwrap()
}

#[test]
fn def_use_rejects_reordered_calls() {
    let mut alg = chain_algorithm();
    assert!(verify_algorithm(&alg).is_clean());
    // Swap the first two calls: call #0 now reads an intermediate produced
    // only by call #1.
    alg.calls.swap(0, 1);
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::DefUse)
        .next()
        .expect("def-use must reject the reordered calls");
    assert_eq!(finding.call_index, Some(0));
    assert!(finding.message.contains("before any call produces it"));
}

#[test]
fn def_use_rejects_dead_intermediate() {
    let mut alg = chain_algorithm();
    // Redirect the final call's intermediate read to an expression input:
    // the intermediate it used to read becomes dead.
    let last = alg.calls.len() - 1;
    let dead = alg.calls[last]
        .inputs
        .iter()
        .copied()
        .find(|&id| {
            alg.operand(id)
                .is_some_and(|o| o.role == OperandRole::Intermediate)
        })
        .expect("final chain call reads an intermediate");
    let input = alg
        .operands
        .iter()
        .find(|o| o.role == OperandRole::Input && o.rows == alg.operand(dead).unwrap().rows)
        .map(|o| o.id);
    // Shapes may no longer conform — that is fine, this test pins the
    // def-use finding specifically.
    let replacement = input.unwrap_or(OperandId(0));
    for slot in &mut alg.calls[last].inputs {
        if *slot == dead {
            *slot = replacement;
        }
    }
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::DefUse)
        .find(|d| d.operand == Some(dead))
        .expect("def-use must report the dead intermediate");
    assert!(finding.message.contains("dead intermediate"));
}

#[test]
fn shape_flow_rejects_swapped_gemm_inputs() {
    let mut alg = chain_algorithm();
    // Swapping a GEMM's factors breaks inner-dimension conformance (the
    // chain dimensions are strictly decreasing, so no pair commutes).
    alg.calls[0].inputs.swap(0, 1);
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::ShapeFlow)
        .next()
        .expect("shape-flow must reject swapped gemm inputs");
    assert_eq!(finding.call_index, Some(0));
    assert!(finding.message.contains("do not conform"));
    // The cost audit skips shape-failed calls: the defect is attributed to
    // shape-flow alone.
    assert_eq!(report.errors_from(PassId::CostAudit).count(), 0);
}

#[test]
fn structure_flow_rejects_wrong_trsm_uplo() {
    // A Cholesky solve: potrf, then two triangular solves against the factor.
    let expr = Expr::spd_var("S", 40).inv().mul(Expr::var("B", 40, 25));
    let algs = enumerate_expr_algorithms(&expr).unwrap();
    let mut alg = algs
        .into_iter()
        .find(|a| {
            a.calls
                .iter()
                .any(|c| matches!(c.op, KernelOp::Potrf { .. }))
        })
        .expect("an SPD solve must offer a Cholesky algorithm");
    assert!(verify_algorithm(&alg).is_clean());
    let (i, call) = alg
        .calls
        .iter_mut()
        .enumerate()
        .find(|(_, c)| matches!(c.op, KernelOp::Trsm { .. }))
        .expect("cholesky solve contains a trsm");
    // Flip the solve's stored-triangle flag: it now claims to read the
    // upper triangle of a factor declared lower-triangular.
    if let KernelOp::Trsm { ref mut uplo, .. } = call.op {
        *uplo = uplo.flip();
    }
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::StructureFlow)
        .next()
        .expect("structure-flow must reject the flipped trsm uplo");
    assert_eq!(finding.call_index, Some(i));
    assert!(finding.message.contains("triangle"));
}

#[test]
fn structure_flow_rejects_symm_on_undeclared_symmetry() {
    // Regression for the calibration-fixture defect this analyser surfaced:
    // `single_call_algorithm` used to declare SYMM's symmetric operand
    // `Structure::General`, claiming symmetry the operand table does not
    // back. The fixed fixture is clean; the old spelling is rejected.
    let op = KernelOp::Symm {
        side: Side::Left,
        uplo: Uplo::Lower,
        m: 12,
        n: 9,
    };
    let fixed = single_call_algorithm(op.clone());
    assert!(verify_algorithm(&fixed).is_clean());

    let mut old = fixed;
    old.operands[0].structure = Structure::General;
    let report = verify_algorithm(&old);
    let finding = report
        .errors_from(PassId::StructureFlow)
        .next()
        .expect("structure-flow must reject an undeclared-symmetric symm operand");
    assert_eq!(finding.call_index, Some(0));
    assert!(finding.message.contains("not known symmetric"));
}

#[test]
fn structure_flow_rejects_general_potrf_factor() {
    // Companion regression: the POTRF fixture's factor must be declared
    // triangular, as the enumerator declares it everywhere else in the IR.
    let fixed = single_call_algorithm(KernelOp::Potrf {
        uplo: Uplo::Lower,
        n: 15,
    });
    assert!(verify_algorithm(&fixed).is_clean());
    let mut old = fixed;
    let out = old
        .operands
        .iter()
        .position(|o| o.role == OperandRole::Output)
        .unwrap();
    old.operands[out].structure = Structure::General;
    let report = verify_algorithm(&old);
    let finding = report
        .errors_from(PassId::StructureFlow)
        .next()
        .expect("structure-flow must require a triangular potrf factor");
    assert_eq!(finding.call_index, Some(0));
    assert!(finding.message.contains("potrf factor"));
}

#[test]
fn structure_flow_rejects_missing_triangle_copy() {
    // AATB algorithm 2 computes M := A·Aᵀ by SYRK (lower triangle only),
    // completes it with an in-place copy, then GEMMs. Deleting the copy
    // leaves GEMM reading a half-written matrix.
    let algs = enumerate_aatb_algorithms(100, 80, 60);
    let mut alg = algs
        .into_iter()
        .find(|a| {
            a.calls
                .iter()
                .any(|c| matches!(c.op, KernelOp::CopyTriangle { .. }))
                && a.calls
                    .iter()
                    .any(|c| matches!(c.op, KernelOp::Gemm { .. }))
        })
        .expect("aatb offers a syrk+copy+gemm algorithm");
    assert!(verify_algorithm(&alg).is_clean());
    let copy_index = alg
        .calls
        .iter()
        .position(|c| matches!(c.op, KernelOp::CopyTriangle { .. }))
        .unwrap();
    alg.calls.remove(copy_index);
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::StructureFlow)
        .next()
        .expect("structure-flow must reject the missing triangle copy");
    assert!(finding.message.contains("missing triangle copy"));
}

#[test]
fn cost_audit_rejects_forged_gemm_dimensions() {
    let mut alg = chain_algorithm();
    // Bump the contracted dimension: operands still conform among
    // themselves, so shape-flow stays silent — only the cost audit can see
    // the claimed k (and hence the FLOP count) is forged.
    if let KernelOp::Gemm { ref mut k, .. } = alg.calls[0].op {
        *k += 1;
    } else {
        panic!("chain call 0 is a gemm");
    }
    let report = verify_algorithm(&alg);
    assert_eq!(report.errors_from(PassId::ShapeFlow).count(), 0);
    let findings: Vec<_> = report.errors_from(PassId::CostAudit).collect();
    assert!(
        findings
            .iter()
            .any(|d| d.call_index == Some(0) && d.message.contains("claims logical dimensions")),
        "cost audit must flag the forged dimensions:\n{report}"
    );
    assert!(
        findings
            .iter()
            .any(|d| d.call_index == Some(0) && d.message.contains("FLOPs")),
        "cost audit must flag the forged FLOP count:\n{report}"
    );
}

#[test]
fn alias_safety_rejects_in_place_gemm() {
    let mut alg = chain_algorithm();
    // Make the final GEMM read the operand it writes.
    let last = alg.calls.len() - 1;
    let out = alg.calls[last].output;
    alg.calls[last].inputs[1] = out;
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::AliasSafety)
        .next()
        .expect("alias-safety must reject the self-aliasing gemm");
    assert_eq!(finding.call_index, Some(last));
    assert_eq!(finding.operand, Some(out));
    assert!(finding.message.contains("in-place aliasing"));
}

#[test]
fn timing_key_lint_rejects_non_canonical_table_keys() {
    // The PR-5 cache-poisoning class: a transposed GEMM used directly as a
    // table key splits one benchmark entry into two.
    let non_canonical = KernelOp::Gemm {
        transa: Trans::Yes,
        transb: Trans::No,
        m: 64,
        n: 48,
        k: 32,
    };
    let report = verify_timing_keys([&non_canonical]);
    let finding = report
        .errors_from(PassId::CostAudit)
        .next()
        .expect("a non-canonical table key must be rejected");
    assert!(finding.message.contains("not canonical"));

    let canonical = non_canonical.timing_key();
    assert!(verify_timing_keys([&canonical]).is_clean());

    // `CallTimeTable` canonicalises on every ingest path, so any table built
    // through the public API passes — even from non-canonical entries.
    let table = CallTimeTable::from_entries(vec![(non_canonical, 1.5e-3)]);
    assert!(verify_call_table(&table).is_clean());
}

#[test]
fn verify_call_table_rejects_non_finite_times() {
    let table = CallTimeTable::from_entries(vec![(
        KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 8,
            n: 8,
            k: 8,
        },
        f64::NAN,
    )]);
    let report = verify_call_table(&table);
    assert!(report
        .errors_from(PassId::CostAudit)
        .any(|d| d.message.contains("unusable time")));
}

/// The LU pipeline of `A^-1*B`: getrf, two triangle extractions, the pivot
/// application, two solves.
fn lu_solve_algorithm() -> Algorithm {
    let expr = Expr::var("A", 12, 12).inv().mul(Expr::var("B", 12, 5));
    enumerate_expr_algorithms(&expr)
        .unwrap()
        .into_iter()
        .find(|a| {
            a.calls
                .iter()
                .any(|c| matches!(c.op, KernelOp::Getrf { .. }))
        })
        .expect("a general solve must offer an LU algorithm")
}

#[test]
fn structure_flow_rejects_a_forged_pivot_vector() {
    // GETRF packs pivot row indices into the factor's trailing column; QR
    // packs Householder taus into the same column of an identically-shaped
    // factor. Forging the producer from GETRF into a square QR keeps every
    // shape conformant and every cost claim true — only the provenance
    // tracking can see LASWP would now permute by tau values.
    let mut alg = lu_solve_algorithm();
    assert!(verify_algorithm(&alg).is_clean());
    let getrf_index = alg
        .calls
        .iter()
        .position(|c| matches!(c.op, KernelOp::Getrf { .. }))
        .unwrap();
    let KernelOp::Getrf { n } = alg.calls[getrf_index].op else {
        unreachable!()
    };
    alg.calls[getrf_index].op = KernelOp::Qr { m: n, n };
    let laswp_index = alg
        .calls
        .iter()
        .position(|c| matches!(c.op, KernelOp::PivotApply { .. }))
        .unwrap();
    let report = verify_algorithm(&alg);
    // The mutation is invisible to every dimensional pass.
    assert_eq!(report.errors_from(PassId::ShapeFlow).count(), 0);
    assert_eq!(report.errors_from(PassId::CostAudit).count(), 0);
    let finding = report
        .errors_from(PassId::StructureFlow)
        .find(|d| d.call_index == Some(laswp_index))
        .expect("structure-flow must reject the forged pivot vector");
    assert!(finding.message.contains("pivot indices cannot be trusted"));
    // The companion defect is caught too: extracting a unit-lower triangle
    // from a factor whose sub-diagonal holds Householder vectors.
    assert!(report
        .errors_from(PassId::StructureFlow)
        .any(|d| d.message.contains("Householder")));
}

#[test]
fn shape_flow_rejects_getrf_of_the_right_hand_side() {
    // Repoint the GETRF at the (non-square) right-hand side: the swapped
    // input breaks squareness, and only squareness.
    let mut alg = lu_solve_algorithm();
    let getrf_index = alg
        .calls
        .iter()
        .position(|c| matches!(c.op, KernelOp::Getrf { .. }))
        .unwrap();
    let rhs = alg
        .operands
        .iter()
        .find(|o| o.role == OperandRole::Input && o.rows != o.cols)
        .expect("the right-hand side is rectangular")
        .id;
    alg.calls[getrf_index].inputs[0] = rhs;
    let report = verify_algorithm(&alg);
    let finding = report
        .errors_from(PassId::ShapeFlow)
        .next()
        .expect("shape-flow must reject a rectangular getrf operand");
    assert_eq!(finding.call_index, Some(getrf_index));
    assert!(finding.message.contains("getrf operand must be square"));
}

#[test]
fn cost_audit_rejects_forged_qr_dimensions() {
    // The QR least-squares pipeline of `A^+*b`. Bump the QR's claimed
    // column count: the operand table still conforms among itself, so
    // shape-flow stays silent — the cost audit sees the forged dimensions,
    // the forged FLOP count, and the forged written-element count.
    let expr = Expr::var("A", 34, 9).pinv().mul(Expr::var("b", 34, 2));
    let mut alg = enumerate_expr_algorithms(&expr)
        .unwrap()
        .into_iter()
        .find(|a| a.calls.iter().any(|c| matches!(c.op, KernelOp::Qr { .. })))
        .expect("a least-squares solve must offer a QR algorithm");
    assert!(verify_algorithm(&alg).is_clean());
    let qr_index = alg
        .calls
        .iter()
        .position(|c| matches!(c.op, KernelOp::Qr { .. }))
        .unwrap();
    if let KernelOp::Qr { ref mut n, .. } = alg.calls[qr_index].op {
        *n += 2;
    }
    let report = verify_algorithm(&alg);
    assert_eq!(report.errors_from(PassId::ShapeFlow).count(), 0);
    let findings: Vec<_> = report.errors_from(PassId::CostAudit).collect();
    for needle in ["claims logical dimensions", "FLOPs", "written elements"] {
        assert!(
            findings
                .iter()
                .any(|d| d.call_index == Some(qr_index) && d.message.contains(needle)),
            "cost audit must flag the forged `{needle}` claim:\n{report}"
        );
    }
}

#[test]
fn forged_output_shape_is_attributed_to_shape_flow() {
    let mut alg = chain_algorithm();
    // Corrupt the output operand's declared rows: the inputs imply a
    // different shape.
    let out = alg
        .operands
        .iter()
        .position(|o| o.role == OperandRole::Output)
        .unwrap();
    let OperandInfo { rows, .. } = alg.operands[out];
    alg.operands[out].rows = rows + 3;
    let report = verify_algorithm(&alg);
    assert!(
        report
            .errors_from(PassId::ShapeFlow)
            .any(|d| d.message.contains("input operands imply")),
        "shape-flow must reject the forged output shape:\n{report}"
    );
}
