//! Positive-path coverage: every algorithm the repo's enumerators emit — the
//! paper's hand-written reference tables, the general merge-search engine
//! over representative expressions, and the isolated-call calibration
//! fixtures — verifies clean.

use lamb_expr::{
    enumerate_aatb_algorithms, enumerate_chain_algorithms, enumerate_expr_algorithms, Expr,
    KernelOp,
};
use lamb_matrix::{Side, Trans, Uplo};
use lamb_perfmodel::calibrate::single_call_algorithm;
use lamb_verify::{verify_algorithm, VerifyExt};

fn assert_all_clean(algs: &[lamb_expr::Algorithm], what: &str) {
    assert!(!algs.is_empty(), "{what}: no algorithms enumerated");
    for alg in algs {
        let report = verify_algorithm(alg);
        assert!(
            report.is_clean(),
            "{what}: algorithm `{}` failed verification:\n{report}",
            alg.name
        );
    }
}

#[test]
fn chain_reference_table_verifies_clean() {
    // Section 3.2.1: the six algorithms of X := A·B·C·D.
    let algs = enumerate_chain_algorithms(&[100, 90, 80, 70, 60]).unwrap();
    assert_eq!(algs.len(), 6);
    assert_all_clean(&algs, "chain reference table");
}

#[test]
fn aatb_reference_table_verifies_clean() {
    // Section 3.2.2: the five algorithms of X := A·Aᵀ·B, mixing GEMM, SYRK,
    // SYMM and the triangle copy (both its in-place uses).
    let algs = enumerate_aatb_algorithms(1000, 800, 600);
    assert_eq!(algs.len(), 5);
    assert_all_clean(&algs, "aatb reference table");
}

#[test]
fn general_enumerator_output_verifies_clean() {
    let cases: Vec<(&str, Expr)> = vec![
        (
            "chain4",
            Expr::var("A", 60, 50)
                .mul(Expr::var("B", 50, 40))
                .mul(Expr::var("C", 40, 30))
                .mul(Expr::var("D", 30, 20)),
        ),
        (
            "aatb",
            Expr::var("A", 50, 30)
                .mul(Expr::var("A", 50, 30).t())
                .mul(Expr::var("B", 50, 20)),
        ),
        (
            "gram2",
            Expr::var("A", 40, 25)
                .mul(Expr::var("A", 40, 25).t())
                .mul(Expr::var("B", 40, 35))
                .mul(Expr::var("B", 40, 35).t()),
        ),
        (
            "sandwich",
            Expr::var("A", 45, 30)
                .t()
                .mul(Expr::var("B", 45, 45))
                .mul(Expr::var("A", 45, 30)),
        ),
        (
            "trmm chain",
            Expr::tri_var("L", 40, Uplo::Lower)
                .mul(Expr::var("A", 40, 30))
                .mul(Expr::var("B", 30, 20)),
        ),
        (
            "upper transposed",
            Expr::tri_var("U", 35, Uplo::Upper)
                .t()
                .mul(Expr::var("A", 35, 25))
                .mul(Expr::var("B", 25, 15)),
        ),
        (
            "cholesky gram",
            Expr::tri_var("L", 30, Uplo::Lower)
                .mul(Expr::tri_var("L", 30, Uplo::Lower).t())
                .mul(Expr::var("B", 30, 22)),
        ),
        (
            "trsm",
            Expr::tri_var("L", 28, Uplo::Lower)
                .inv()
                .mul(Expr::var("B", 28, 18)),
        ),
        (
            "spd product",
            Expr::spd_var("S", 32).mul(Expr::var("B", 32, 24)),
        ),
        (
            "spd solve chain",
            Expr::spd_var("S", 26)
                .inv()
                .mul(Expr::var("A", 26, 20))
                .mul(Expr::var("B", 20, 14)),
        ),
        (
            "spd gram",
            Expr::spd_var("S", 24)
                .mul(Expr::var("A", 24, 16))
                .mul(Expr::var("A", 24, 16).t()),
        ),
        ("single leaf", Expr::var("A", 10, 12)),
        // Degenerate dimensions flow through every pass without underflow.
        (
            "degenerate",
            Expr::var("A", 0, 1)
                .mul(Expr::var("B", 1, 1))
                .mul(Expr::var("C", 1, 5)),
        ),
    ];
    for (what, expr) in cases {
        let algs = enumerate_expr_algorithms(&expr).expect(what);
        assert_all_clean(&algs, what);
    }
}

#[test]
fn calibration_fixtures_verify_clean() {
    // The isolated-call benchmark fixtures are legal IR too — including the
    // out-of-place triangle copy (workspace output) and the bare SYRK whose
    // triangle-only output is a warning, not an error.
    let ops = [
        KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: 5,
            n: 6,
            k: 7,
        },
        KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            n: 8,
            k: 3,
        },
        KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Upper,
            m: 4,
            n: 9,
        },
        KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            m: 7,
            n: 4,
        },
        KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 6,
            n: 5,
        },
        KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 4,
            n: 7,
        },
        KernelOp::Trsm {
            side: Side::Right,
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            m: 5,
            n: 6,
        },
        KernelOp::Potrf {
            uplo: Uplo::Upper,
            n: 7,
        },
        KernelOp::CopyTriangle {
            uplo: Uplo::Lower,
            n: 9,
        },
    ];
    for op in ops {
        let alg = single_call_algorithm(op.clone());
        let report = alg.verify();
        assert!(
            report.is_clean(),
            "fixture for `{op}` failed verification:\n{report}"
        );
    }
}

#[test]
fn engine_and_reference_tables_agree_under_verification() {
    // The engine's AATB algorithms and the hand-written table describe the
    // same five algorithms; both sides verify clean with identical FLOPs.
    let reference = enumerate_aatb_algorithms(500, 400, 300);
    let expr = Expr::var("A", 500, 400)
        .mul(Expr::var("A", 500, 400).t())
        .mul(Expr::var("B", 500, 300));
    let engine = enumerate_expr_algorithms(&expr).unwrap();
    assert_eq!(reference.len(), engine.len());
    let mut ref_flops: Vec<u64> = reference.iter().map(lamb_expr::Algorithm::flops).collect();
    let mut eng_flops: Vec<u64> = engine.iter().map(lamb_expr::Algorithm::flops).collect();
    ref_flops.sort_unstable();
    eng_flops.sort_unstable();
    assert_eq!(ref_flops, eng_flops);
    assert_all_clean(&reference, "aatb reference");
    assert_all_clean(&engine, "aatb engine");
}
