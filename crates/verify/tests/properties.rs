//! Property-based coverage of the verifier.
//!
//! Positive half: every algorithm the enumerator emits for randomly
//! dimensioned chain / transpose / Gram / triangular / SPD expressions
//! verifies clean. Negative half: seeded random mutations of enumerated
//! algorithms are each rejected by the pass designed to catch them.

use lamb_expr::{enumerate_expr_algorithms, Algorithm, Expr, KernelOp};
use lamb_matrix::Uplo;
use lamb_verify::{verify_algorithm, PassId};
use proptest::prelude::*;

fn assert_clean(alg: &Algorithm, what: &str) -> Result<(), TestCaseError> {
    let report = verify_algorithm(alg);
    prop_assert!(
        report.is_clean(),
        "{what}: `{}` failed verification:\n{report}",
        alg.name
    );
    Ok(())
}

fn chain_expr(dims: &[usize]) -> Expr {
    let names = ["A", "B", "C", "D", "E", "F"];
    let mut factors = Vec::new();
    for i in 0..dims.len() - 1 {
        factors.push(Expr::var(names[i % names.len()], dims[i], dims[i + 1]));
    }
    Expr::product(factors)
}

/// Strictly decreasing, distinct dimensions from positive increments:
/// swapping any GEMM's inputs in such a chain can never conform, which the
/// mutation property relies on.
fn strictly_decreasing(increments: &[usize]) -> Vec<usize> {
    let mut dims: Vec<usize> = Vec::with_capacity(increments.len());
    let mut acc = 0;
    for &inc in increments {
        acc += inc; // inc >= 1 keeps the sequence strictly increasing
        dims.push(acc);
    }
    dims.reverse();
    dims
}

fn uplo_of(raw: usize) -> Uplo {
    if raw == 0 {
        Uplo::Lower
    } else {
        Uplo::Upper
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_chains_verify_clean(dims in [1usize..50, 1usize..50, 1usize..50, 1usize..50, 1usize..50, 1usize..50], len in 4usize..7) {
        let expr = chain_expr(&dims[..len]);
        for alg in enumerate_expr_algorithms(&expr).unwrap() {
            assert_clean(&alg, "random chain")?;
        }
    }

    #[test]
    fn random_transpose_and_gram_expressions_verify_clean(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        gram_first in 0usize..2,
    ) {
        // A·Aᵀ·B (Gram) and Aᵀ·B·A (sandwich) exercise the transpose-pushing
        // and SYRK/SYMM rewrites.
        let expr = if gram_first == 0 {
            Expr::var("A", m, k)
                .mul(Expr::var("A", m, k).t())
                .mul(Expr::var("B", m, n))
        } else {
            Expr::var("A", m, k)
                .t()
                .mul(Expr::var("B", m, m))
                .mul(Expr::var("A", m, k))
        };
        for alg in enumerate_expr_algorithms(&expr).unwrap() {
            assert_clean(&alg, "transpose/gram")?;
        }
    }

    #[test]
    fn random_triangular_expressions_verify_clean(
        n in 1usize..40,
        c in 1usize..30,
        lower in 0usize..2,
        transposed in 0usize..2,
        solve in 0usize..2,
    ) {
        let tri = Expr::tri_var("L", n, uplo_of(lower));
        let tri = if transposed == 1 { tri.t() } else { tri };
        let tri = if solve == 1 { tri.inv() } else { tri };
        let expr = tri.mul(Expr::var("B", n, c));
        for alg in enumerate_expr_algorithms(&expr).unwrap() {
            assert_clean(&alg, "triangular")?;
        }
    }

    #[test]
    fn random_spd_expressions_verify_clean(
        n in 1usize..40,
        c in 1usize..30,
        solve in 0usize..2,
        chain_tail in 0usize..2,
    ) {
        let spd = Expr::spd_var("S", n);
        let spd = if solve == 1 { spd.inv() } else { spd };
        let expr = if chain_tail == 1 {
            spd.mul(Expr::var("A", n, c)).mul(Expr::var("B", c, n.min(20)))
        } else {
            spd.mul(Expr::var("B", n, c))
        };
        for alg in enumerate_expr_algorithms(&expr).unwrap() {
            assert_clean(&alg, "spd")?;
        }
    }

    #[test]
    fn mutated_algorithms_are_rejected_by_the_intended_pass(
        increments in [1usize..12, 1usize..12, 1usize..12, 1usize..12, 1usize..12],
        pick in 0usize..1000,
        mutation in 0usize..4,
    ) {
        let dims = strictly_decreasing(&increments);
        let expr = chain_expr(&dims);
        let algs = enumerate_expr_algorithms(&expr).unwrap();
        prop_assert!(!algs.is_empty());
        let mut alg = algs[pick % algs.len()].clone();
        if alg.calls.len() < 2 {
            return Ok(()); // nothing to reorder; chain of 5 dims always has 3 calls
        }
        let last = alg.calls.len() - 1;
        let expected = match mutation {
            0 => {
                // Swap the last call with the producer of one of its
                // intermediate inputs: a read now precedes its definition.
                let producer = alg.calls[last].inputs.iter().copied().find_map(|id| {
                    alg.calls[..last].iter().position(|c| c.output == id)
                });
                let Some(producer) = producer else { return Ok(()) };
                alg.calls.swap(producer, last);
                PassId::DefUse
            }
            1 => {
                // Distinct dims: swapped GEMM factors can never conform.
                alg.calls[0].inputs.swap(0, 1);
                PassId::ShapeFlow
            }
            2 => {
                let KernelOp::Gemm { ref mut k, .. } = alg.calls[0].op else {
                    return Ok(());
                };
                *k += 1;
                PassId::CostAudit
            }
            _ => {
                let out = alg.calls[last].output;
                alg.calls[last].inputs[0] = out;
                PassId::AliasSafety
            }
        };
        let report = verify_algorithm(&alg);
        prop_assert!(
            report.errors_from(expected).next().is_some(),
            "mutation {} must be rejected by {}:\n{}",
            mutation,
            expected,
            report
        );
    }
}
