//! Verification of CSE-transformed (shared-factor) algorithms.
//!
//! Two halves. First: every algorithm rewritten by
//! [`eliminate_common_subexpressions`] — multiply-read cached factors,
//! merged duplicates, rewired readers — must still pass all five analysis
//! passes with zero errors, across the chain / transpose / Gram / triangular
//! / SPD expression families. Second: [`verify_shared_flop_claim`] must
//! confirm the CSE pass's deduplicated FLOP totals and catch forged claims
//! (a double-charged duplicate, an uncharged distinct call).

use lamb_expr::{eliminate_common_subexpressions, enumerate_expr_algorithms, shared_flops, Expr};
use lamb_verify::{verify_algorithm, verify_shared_flop_claim, PassId};

/// Expression families with genuinely repeated subcomputations alongside the
/// plain ones: repeated Gram products, repeated SPD solves, triangular
/// chains with a repeated triangular leaf.
fn expression_zoo() -> Vec<(&'static str, Expr)> {
    let a = Expr::var("A", 24, 9);
    let b = Expr::var("B", 24, 13);
    let s = Expr::spd_var("S", 18);
    let l = Expr::tri_var("L", 18, lamb_matrix::Uplo::Lower);
    vec![
        (
            "chain",
            Expr::var("A", 30, 20)
                .mul(Expr::var("B", 20, 25))
                .mul(Expr::var("C", 25, 10)),
        ),
        ("gram", a.clone().mul(a.clone().t()).mul(b.clone())),
        (
            "repeated gram",
            a.clone()
                .mul(a.clone().t())
                .mul(a.clone())
                .mul(a.t())
                .mul(b),
        ),
        (
            "repeated spd solve",
            s.clone().inv().mul(s.inv()).mul(Expr::var("B", 18, 7)),
        ),
        (
            "triangular chain",
            l.clone().mul(l).mul(Expr::var("B", 18, 11)),
        ),
    ]
}

#[test]
fn cse_transformed_algorithms_pass_all_five_passes() {
    for (what, expr) in expression_zoo() {
        for alg in enumerate_expr_algorithms(&expr).unwrap() {
            let outcome = eliminate_common_subexpressions(&alg);
            let report = verify_algorithm(&outcome.algorithm);
            assert!(
                report.is_clean(),
                "{what}: CSE form of `{}` failed verification:\n{report}",
                alg.name
            );
        }
    }
}

#[test]
fn shared_flop_claims_are_confirmed_against_the_re_derivation() {
    let mut audited_a_real_merge = false;
    for (what, expr) in expression_zoo() {
        for alg in enumerate_expr_algorithms(&expr).unwrap() {
            let claimed = shared_flops(&alg);
            let report = verify_shared_flop_claim(&alg, claimed);
            assert!(
                report.is_clean(),
                "{what}: honest claim for `{}` rejected:\n{report}",
                alg.name
            );
            if claimed < alg.flops() {
                audited_a_real_merge = true;
            }
        }
    }
    assert!(
        audited_a_real_merge,
        "the zoo must exercise at least one genuine deduplication"
    );
}

#[test]
fn forged_double_charges_are_caught() {
    // Pick an algorithm where CSE genuinely merges something, so the raw
    // total is a forged (double-charging) version of the shared claim.
    let (_, expr) = expression_zoo().remove(2); // repeated gram
    let alg = enumerate_expr_algorithms(&expr)
        .unwrap()
        .into_iter()
        .find(|alg| shared_flops(alg) < alg.flops())
        .expect("some ordering repeats the Gram product");
    // Claiming the raw total double-charges the merged calls.
    let report = verify_shared_flop_claim(&alg, alg.flops());
    let finding = report
        .errors_from(PassId::CostAudit)
        .next()
        .expect("the double-charged claim must be rejected");
    assert!(finding.message.contains("does not match"), "{finding:?}");
    // And an under-charged claim is equally forged.
    let report = verify_shared_flop_claim(&alg, shared_flops(&alg) - 1);
    assert!(!report.is_clean());
}
