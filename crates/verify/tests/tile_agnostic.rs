//! The cost audit's tile-agnosticism contract.
//!
//! The cost-audit pass prices kernel calls from logical dimensions alone;
//! the register tile and cache blocking a machine is tuned to
//! (`lamb-kernels`' [`TileVariant`] / `BlockConfig`, discovered by
//! `calibrate --autotune`) must never perturb an audited FLOP claim. Two
//! halves are checked here: audited algorithms verify cleanly without any
//! blocking input existing in the verifier API, and the kernels those audits
//! price compute the same numbers under every register tile, so a tuned
//! configuration cannot make an audited claim wrong after the fact.

use lamb_expr::{enumerate_expr_algorithms, Expr};
use lamb_kernels::{gemm_new, BlockConfig, TileVariant};
use lamb_matrix::ops::max_abs_diff;
use lamb_matrix::random::random_seeded;
use lamb_matrix::Trans;
use lamb_verify::verify_algorithm;

#[test]
fn audited_algorithms_are_clean_with_no_blocking_input_anywhere() {
    // `verify_algorithm` — and the cost audit inside it — takes the IR and
    // nothing else: there is no `BlockConfig` to pass, so one clean report
    // covers every tile variant a calibrated store might carry.
    let a = Expr::var("A", 24, 9);
    let expr = a.clone().mul(a.t()).mul(Expr::var("B", 24, 13));
    let algorithms = enumerate_expr_algorithms(&expr).unwrap();
    assert!(!algorithms.is_empty());
    for alg in &algorithms {
        let report = verify_algorithm(alg);
        assert!(
            report.is_clean(),
            "`{}` failed the blocking-free audit:\n{report}",
            alg.name
        );
    }
}

#[test]
fn every_register_tile_computes_the_flops_the_audit_prices() {
    // The audit prices a 31x29x27 GEMM at 2mnk FLOPs no matter how it is
    // blocked. Execute that very call under every register tile and confirm
    // the results agree: the tiles differ in speed, not in the computation
    // the FLOP count describes. (Odd sizes force partial tiles everywhere.)
    let (m, n, k) = (31, 29, 27);
    let a = random_seeded(m, k, 42);
    let b = random_seeded(k, n, 43);
    let reference = gemm_new(Trans::No, &a, Trans::No, &b, &BlockConfig::serial()).unwrap();
    for tile in TileVariant::ALL {
        let cfg = BlockConfig::serial().with_tile(tile);
        let c = gemm_new(Trans::No, &a, Trans::No, &b, &cfg).unwrap();
        assert!(
            max_abs_diff(&c, &reference).unwrap() < 1e-11 * k as f64,
            "tile {tile} diverged from the audited computation"
        );
    }
}
