//! A miniature version of the paper's experimental campaign: hunt for
//! anomalies at random (Experiment 1), map the region around the first one
//! (Experiment 2), and check how well isolated kernel benchmarks would have
//! predicted them (Experiment 3).
//!
//! Runs on the simulated executor at a reduced scale so it finishes in
//! seconds; pass `--measured` to use the real kernels at an even smaller
//! scale.
//!
//! ```text
//! cargo run --release --example anomaly_hunt [-- --measured]
//! ```

use lamb::experiments::{
    predict_from_benchmarks, prediction_report, region_report, run_random_search,
    scan_lines_around, search_report, LineConfig, PredictConfig, SearchConfig,
};
use lamb::prelude::*;

fn main() {
    let measured = std::env::args().any(|a| a == "--measured");
    let expr = AatbExpression::new();

    let mut executor: Box<dyn Executor> = if measured {
        Box::new(MeasuredExecutor::new(
            MachineModel::generic_laptop(),
            BlockConfig::default(),
            3,
            32 * 1024 * 1024,
        ))
    } else {
        Box::new(SimulatedExecutor::paper_like())
    };

    // Experiment 1: random search, scaled down from the paper's 1000 anomalies.
    let search_cfg = SearchConfig {
        target_anomalies: if measured { 2 } else { 25 },
        max_samples: if measured { 60 } else { 5_000 },
        // Keep measured instances small so each sample takes milliseconds.
        box_max: if measured { 400 } else { 1200 },
        ..SearchConfig::paper_aatb()
    };
    let search = run_random_search(&expr, executor.as_mut(), &search_cfg);
    println!("{}", search_report(&search));
    if search.anomalies.is_empty() {
        println!("no anomalies found at this scale — try more samples");
        return;
    }
    let first = &search.anomalies[0];
    println!(
        "first anomaly: dims {:?}, {:.0}% faster with {:.0}% more FLOPs\n",
        first.dims,
        100.0 * first.time_score,
        100.0 * first.flop_score / (1.0 - first.flop_score)
    );

    // Experiment 2: walk the axis-aligned lines around the first anomaly.
    let mut line_cfg = LineConfig::paper().with_max_anomalies(1);
    if measured {
        line_cfg.box_max = 400;
    }
    let scans = scan_lines_around(&expr, executor.as_mut(), &search.anomalies, &line_cfg);
    println!("{}", region_report(&scans, expr.num_dims()));

    // Experiment 3: would isolated kernel benchmarks have predicted them?
    let prediction =
        predict_from_benchmarks(&expr, executor.as_mut(), &scans, &PredictConfig::paper());
    println!("{}", prediction_report(&prediction));
}
