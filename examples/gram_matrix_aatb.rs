//! Gram-matrix workload: `X := A·Aᵀ·B` executed with the **real kernels**.
//!
//! In covariance/Gram-matrix pipelines (e.g. the normal equations of a least
//! squares problem, or whitening a block of signals) one repeatedly forms
//! `A·Aᵀ` and applies it to a block of vectors `B`. This example runs all
//! five algorithm variants of the paper on actual matrices with the
//! `MeasuredExecutor` (blocked, packed, Rayon-parallel kernels; median of
//! repetitions; cache flushed between repetitions) and verifies that they all
//! produce the same result up to round-off.
//!
//! ```text
//! cargo run --release --example gram_matrix_aatb
//! ```

use lamb::matrix::ops::max_abs_diff;
use lamb::matrix::random::random_seeded;
use lamb::prelude::*;

fn main() {
    // Modest sizes so the example finishes in seconds even on a laptop.
    let (d0, d1, d2) = (192usize, 640usize, 768usize);
    println!("X := A*A^T*B with A {d0}x{d1}, B {d0}x{d2} (real kernels)\n");

    let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
    let mut executor = MeasuredExecutor::new(
        MachineModel::generic_laptop(),
        BlockConfig::default(),
        3,
        32 * 1024 * 1024,
    );

    // Time each algorithm with the paper's measurement protocol.
    println!(
        "{:<42} {:>14} {:>12} {:>8}",
        "algorithm", "FLOPs", "time [ms]", "eff"
    );
    let machine = executor.machine().clone();
    let mut timings = Vec::new();
    for alg in &algorithms {
        let t = executor.execute_algorithm(alg);
        println!(
            "{:<42} {:>14} {:>12.2} {:>8.2}",
            alg.name,
            t.flops,
            t.seconds * 1e3,
            t.efficiency(&machine)
        );
        timings.push(t.seconds);
    }
    let evaluation = evaluate_instance(&[d0, d1, d2], &algorithms, &mut executor);
    let verdict = evaluation.classify(0.10);
    println!(
        "\ncheapest algorithms: {:?}   fastest algorithms: {:?}   anomaly at 10%: {}",
        verdict.cheapest, verdict.fastest, verdict.is_anomaly
    );

    // Numerical cross-validation: compute X with the two extreme variants by
    // hand and compare.
    let cfg = BlockConfig::default();
    let a = random_seeded(d0, d1, 1);
    let b = random_seeded(d0, d2, 2);
    // Variant 1: SYRK triangle + SYMM.
    let tri = syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap();
    let x_syrk = symm_new(Side::Left, Uplo::Lower, &tri, &b, &cfg).unwrap();
    // Variant 5: GEMM(Aᵀ·B) then GEMM(A·M).
    let m = gemm_new(Trans::Yes, &a, Trans::No, &b, &cfg).unwrap();
    let x_gemm = gemm_new(Trans::No, &a, Trans::No, &m, &cfg).unwrap();
    let diff = max_abs_diff(&x_syrk, &x_gemm).unwrap();
    println!("max |X_syrk+symm - X_gemm+gemm| = {diff:.3e} (mathematically equivalent)");
    assert!(diff < 1e-8, "algorithm variants must agree numerically");
}
