//! From text to an executed algorithm choice: the general expression front
//! end.
//!
//! Parses a few product expressions (including ones the paper never
//! studied), enumerates their algorithm sets through the rewrite engine, and
//! plans each on the simulated machine model.
//!
//! ```text
//! cargo run --release --example parsed_expressions
//! ```

use lamb::prelude::*;

fn main() {
    let scenarios: &[(&str, Vec<usize>)] = &[
        ("A*A^T*B", vec![80, 514, 768]),
        ("A*B*B^T", vec![300, 700, 900]),
        ("A*A^T*B*B^T", vec![200, 500, 400]),
        (
            "A*B*C*D*E*F*G*H",
            vec![600, 40, 800, 30, 900, 50, 700, 60, 500],
        ),
    ];
    for (text, dims) in scenarios {
        let expr = TreeExpression::parse(text).expect("expression parses");
        let planner = Planner::for_expression(&expr)
            .policy(MinPredictedTime)
            .top_k(12);
        let plan = planner.plan(dims).expect("planning succeeds");
        let outcome = plan.execute();
        println!(
            "{text} with dims {dims:?}: {} algorithms enumerated ({} duplicate(s) removed)",
            plan.algorithms.len(),
            plan.duplicates_removed
        );
        println!(
            "  chosen: {}\n  verdict: {} (regret {:.2}%)\n",
            plan.chosen_algorithm().name,
            if outcome.is_anomaly() {
                "ANOMALY — FLOP counts mislead here"
            } else {
                "not an anomaly"
            },
            100.0 * outcome.regret()
        );
    }

    // The engine derives the paper's tables: six GEMM orders for the chain,
    // five mixed-kernel algorithms for A*A^T*B.
    let aatb = TreeExpression::parse("A*A^T*B").unwrap();
    for alg in aatb.algorithms(&[80, 514, 768]).unwrap() {
        println!("{}", alg.name);
    }
}
