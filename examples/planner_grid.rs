//! Batched planning with the `Planner`: sweep a grid of `A·Aᵀ·B` instances,
//! fan the planning out across worker threads with a shared prediction
//! cache, and report where the minimum-FLOP discriminant would have gone
//! wrong.
//!
//! ```text
//! cargo run --release --example planner_grid
//! ```

use lamb::prelude::*;

fn main() {
    let expr = AatbExpression::new();

    // A lattice over (d0, d1, d2): small symmetric orders against growing
    // right-hand sides — the regime where the paper finds abundant anomalies.
    let mut grid = Vec::new();
    for d0 in (40..=200).step_by(40) {
        for d2 in (200..=1000).step_by(200) {
            grid.push(vec![d0, 514, d2]);
        }
    }

    let planner = Planner::for_expression(&expr)
        .policy(MinPredictedTime)
        .threshold(0.10);
    let plans = planner.plan_grid(&grid);

    println!(
        "{:<20} {:<28} {:>10} {:>10} {:>9}",
        "dims", "chosen (min-predicted-time)", "regret", "min-flops", "anomaly"
    );
    let mut anomalies = 0;
    let mut rescued = 0;
    for plan in plans {
        let plan = plan.expect("all grid instances are valid");
        let outcome = plan.execute();
        let cheapest_idx = plan
            .scores
            .iter()
            .min_by_key(|s| s.flops)
            .expect("non-empty")
            .index;
        if outcome.is_anomaly() {
            anomalies += 1;
            if plan.chosen != cheapest_idx {
                rescued += 1;
            }
        }
        println!(
            "{:<20} {:<28} {:>9.2}% {:>10} {:>9}",
            format!("{:?}", plan.dims),
            plan.chosen_algorithm().kernel_summary(),
            100.0 * outcome.regret(),
            plan.algorithms[cheapest_idx].kernel_summary(),
            if outcome.is_anomaly() { "yes" } else { "no" }
        );
    }
    let (hits, misses) = planner.cache_stats();
    println!(
        "\n{} instances, {} anomalies, {} where the policy deviated from min-FLOPs",
        grid.len(),
        anomalies,
        rescued
    );
    println!("prediction cache: {hits} hits / {misses} misses across the whole grid");
}
