//! Quickstart: from an expression to an algorithm choice.
//!
//! Builds the paper's two expressions symbolically, enumerates their
//! algorithm sets, times them on the simulated machine model, and shows where
//! the minimum-FLOP-count discriminant goes wrong.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lamb::prelude::*;

fn main() {
    // ---------------------------------------------------------------- chain
    // X := A·B·C·D with the instance (331, 279, 338, 854, 427) — one of the
    // anomalies highlighted in the paper's Figure 8.
    let dims = [331, 279, 338, 854, 427];
    let a = Expr::var("A", dims[0], dims[1]);
    let b = Expr::var("B", dims[1], dims[2]);
    let c = Expr::var("C", dims[2], dims[3]);
    let d = Expr::var("D", dims[3], dims[4]);
    let chain = Expr::product(vec![a, b, c, d]);
    let (pattern, algorithms) = generate_algorithms(&chain).expect("well-shaped expression");
    println!(
        "expression {chain} recognised as {pattern:?}: {} algorithms",
        algorithms.len()
    );

    let mut executor = SimulatedExecutor::paper_like();
    let evaluation = evaluate_instance(&dims, &algorithms, &mut executor);
    println!("\n{:<38} {:>16} {:>12}", "algorithm", "FLOPs", "time [ms]");
    for m in &evaluation.measurements {
        println!("{:<38} {:>16} {:>12.2}", m.name, m.flops, m.seconds * 1e3);
    }
    let verdict = evaluation.classify(0.10);
    println!(
        "cheapest: {:?}  fastest: {:?}  anomaly: {}  (time score {:.1}%, FLOP score {:.1}%)",
        verdict.cheapest,
        verdict.fastest,
        verdict.is_anomaly,
        100.0 * verdict.time_score,
        100.0 * verdict.flop_score
    );

    // ----------------------------------------------------------------- AAtB
    // X := A·Aᵀ·B with a small symmetric order — the regime where the paper
    // finds abundant anomalies.
    let (d0, d1, d2) = (80, 514, 768);
    let a = Expr::var("A", d0, d1);
    let bmat = Expr::var("B", d0, d2);
    let aatb = a.clone().mul(a.t()).mul(bmat);
    let (pattern, algorithms) = generate_algorithms(&aatb).expect("well-shaped expression");
    println!(
        "\nexpression {aatb} recognised as {pattern:?}: {} algorithms",
        algorithms.len()
    );

    let evaluation = evaluate_instance(&[d0, d1, d2], &algorithms, &mut executor);
    println!("\n{:<38} {:>16} {:>12}", "algorithm", "FLOPs", "time [ms]");
    for m in &evaluation.measurements {
        println!("{:<38} {:>16} {:>12.2}", m.name, m.flops, m.seconds * 1e3);
    }
    let verdict = evaluation.classify(0.10);
    println!(
        "cheapest: {:?}  fastest: {:?}  anomaly: {}  (time score {:.1}%, FLOP score {:.1}%)",
        verdict.cheapest,
        verdict.fastest,
        verdict.is_anomaly,
        100.0 * verdict.time_score,
        100.0 * verdict.flop_score
    );

    // ------------------------------------------------------------ selection
    // What would the different selection strategies pick?
    for strategy in [
        Strategy::MinFlops,
        Strategy::MinPredictedTime,
        Strategy::Oracle,
    ] {
        let outcome = evaluate_strategy(strategy, &algorithms, &mut executor);
        println!(
            "strategy {:<22} picks algorithm {} ({:.2} ms, {:.1}% slower than optimal)",
            outcome.strategy,
            outcome.chosen + 1,
            outcome.chosen_seconds * 1e3,
            100.0 * outcome.regret()
        );
    }
}
