//! Matrix-chain algorithm selection for a signal-processing-style pipeline.
//!
//! The paper's introduction motivates the problem with expressions from
//! signal processing and data assimilation in which a chain of operators with
//! very different dimensions (wide measurement matrices, skinny projection
//! matrices) is applied to data. The multiplication order then changes the
//! FLOP count by orders of magnitude — and, as this example shows, the
//! FLOP-optimal order is not always the time-optimal one.
//!
//! ```text
//! cargo run --release --example signal_chain_selection
//! ```

use lamb::prelude::*;

fn main() {
    // A four-operator pipeline: projection (tall-skinny), two mixing
    // operators, and a wide readout — dimensions chosen so the multiplication
    // order matters a lot.
    let dims = [900usize, 64, 720, 48, 1024];
    println!("operator chain A*B*C*D with dimensions {dims:?}\n");

    let algorithms = enumerate_chain_algorithms(&dims).expect("valid chain");
    let (dp_flops, dp_paren) = optimal_chain_order(&dims).expect("valid chain");
    println!("dynamic-programming optimum: {dp_paren} with {dp_flops} FLOPs\n");

    let mut executor = SimulatedExecutor::paper_like();
    let evaluation = evaluate_instance(&dims, &algorithms, &mut executor);
    let cheapest_flops = evaluation
        .measurements
        .iter()
        .map(|m| m.flops)
        .min()
        .unwrap();
    println!(
        "{:<44} {:>16} {:>12} {:>10}",
        "algorithm", "FLOPs", "time [ms]", "vs cheapest"
    );
    for m in &evaluation.measurements {
        println!(
            "{:<44} {:>16} {:>12.2} {:>9.2}x",
            m.name,
            m.flops,
            m.seconds * 1e3,
            m.flops as f64 / cheapest_flops as f64
        );
    }
    assert_eq!(
        dp_flops, cheapest_flops,
        "the DP optimum is the cheapest enumerated algorithm"
    );

    let verdict = evaluation.classify(0.05);
    println!(
        "\ncheapest: {:?}  fastest: {:?}  anomaly at 5%: {}",
        verdict.cheapest, verdict.fastest, verdict.is_anomaly
    );

    // Compare what the different selection strategies would pick across a
    // sweep of the unknown readout width d4 (the "symbolic size" scenario of
    // the paper's conclusions).
    println!("\nsweep of the readout width d4 (selection under a symbolic size):");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "d4", "min-flops", "predicted-time", "oracle"
    );
    for d4 in [64usize, 128, 256, 512, 1024, 2048] {
        let mut dims = dims;
        dims[4] = d4;
        let algorithms = enumerate_chain_algorithms(&dims).expect("valid chain");
        let mut row = Vec::new();
        for strategy in [
            Strategy::MinFlops,
            Strategy::MinPredictedTime,
            Strategy::Oracle,
        ] {
            let outcome = evaluate_strategy(strategy, &algorithms, &mut executor);
            row.push(format!(
                "alg{} ({:.0}ms)",
                outcome.chosen + 1,
                outcome.chosen_seconds * 1e3
            ));
        }
        println!("{:>6} {:>12} {:>14} {:>12}", d4, row[0], row[1], row[2]);
    }
}
