//! How much performance is left on the table by selecting algorithms with the
//! FLOP count alone?
//!
//! This example quantifies the paper's concluding conjecture: combining FLOP
//! counts with kernel performance profiles (the `MinPredictedTime` and
//! `Hybrid` strategies) should recover most of the loss that the pure
//! `MinFlops` discriminant incurs on anomalous instances.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use lamb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let instances = 200;
    let mut rng = StdRng::seed_from_u64(4210);
    let strategies = [
        Strategy::MinFlops,
        Strategy::MinPredictedTime,
        Strategy::Hybrid { flop_margin: 0.5 },
        Strategy::Oracle,
    ];

    for (name, num_dims) in [("matrix chain ABCD", 5usize), ("A*A^T*B", 3usize)] {
        let sampled: Vec<Vec<usize>> = (0..instances)
            .map(|_| (0..num_dims).map(|_| rng.random_range(20..=1200)).collect())
            .collect();
        println!("==== {name}: {instances} random instances in [20, 1200]^{num_dims} ====");
        println!(
            "{:<26} {:>18} {:>16} {:>16}",
            "strategy", "mean slowdown", "worst slowdown", "optimal picks"
        );
        for strategy in strategies {
            let mut executor = SimulatedExecutor::paper_like();
            let mut total = 0.0;
            let mut worst: f64 = 0.0;
            let mut optimal = 0usize;
            for dims in &sampled {
                let algorithms = if num_dims == 5 {
                    enumerate_chain_algorithms(dims).expect("valid chain")
                } else {
                    enumerate_aatb_algorithms(dims[0], dims[1], dims[2])
                };
                let outcome = evaluate_strategy(strategy, &algorithms, &mut executor);
                total += outcome.regret();
                worst = worst.max(outcome.regret());
                if outcome.regret() < 1e-9 {
                    optimal += 1;
                }
            }
            println!(
                "{:<26} {:>17.2}% {:>15.2}% {:>15.1}%",
                strategy.name(),
                100.0 * total / instances as f64,
                100.0 * worst,
                100.0 * optimal as f64 / instances as f64
            );
        }
        println!();
    }
    println!("Reading: `min-flops` is the discriminant studied by the paper; its mean and");
    println!("worst-case slowdowns on A*A^T*B are what the anomalies cost in practice, and");
    println!("`min-predicted-time` (FLOPs + kernel performance profiles) recovers most of it.");
}
