//! The factorisation conformance test-kit.
//!
//! [`solver_conformance_suite!`](crate::solver_conformance_suite) generates
//! one test module per [`Solver`](crate::kernels::Solver) implementation, so
//! every factorisation-backed solve pipeline — present and future — is held
//! to the same contract:
//!
//! * **dispatch & purity** — the solver claims the operand it is given, its
//!   factor has the declared shape, and factoring never mutates the operand;
//! * **reconstruction** — `A·(A⁺·A) = A` (the first Moore–Penrose
//!   condition; for square solvers `A⁺·A` is the identity);
//! * **residual** — `‖A·X − B‖` (square) or the normal-equations residual
//!   `‖Aᵀ(A·X − B)‖` (tall) is at the backward-stability scale;
//! * **round-trip & determinism** — a consistent system recovers its known
//!   solution, and re-solving is bit-identical;
//! * **degenerate dimensions** — zero and unit orders and empty right-hand
//!   sides factor and solve without panicking;
//! * **poison inputs** — a singular operand yields a structured error,
//!   never a panic or silent garbage;
//! * **verifier cleanliness** — the kernel-call IR realisation of the
//!   solver's pipeline passes the `lamb-verify` analyser with zero errors;
//! * **factor-cache identity stability** — the cacheable identity of the
//!   factorisation call embeds the factor mnemonic (so kinds can never
//!   collide) and is reproducible across independent enumerations.
//!
//! The suite is macro-generated rather than trait-object-driven so each
//! property is its own `#[test]` with a precise failure location. See
//! `tests/solver_conformance.rs` for the three stock instantiations.

/// Generate the conformance suite for one `Solver` implementation.
///
/// ```ignore
/// lamb::solver_conformance_suite! {
///     mod lu_solver {
///         solver: lamb::kernels::LuSolver,
///         structure: lamb::matrix::Structure::General,
///         shape: |n| (n, n),
///         operand: |rows, cols, seed| lamb::matrix::random::random_seeded(rows, cols, seed),
///         expression: "A^-1*B",
///         dims: [20, 4],
///     }
/// }
/// ```
///
/// * `shape` maps a nominal order `n` to the operand shape the solver
///   handles (square solvers: `(n, n)`; the QR solver: a tall rectangle).
/// * `operand` builds a deterministic, well-conditioned operand of that
///   shape (SPD for Cholesky, general otherwise).
/// * `expression`/`dims` name a planner expression whose enumeration
///   contains this solver's kernel pipeline, for the verifier-cleanliness
///   and cache-identity tests.
#[macro_export]
macro_rules! solver_conformance_suite {
    (
        mod $name:ident {
            solver: $solver:expr,
            structure: $structure:expr,
            shape: $shape:expr,
            operand: $operand:expr,
            expression: $text:expr,
            dims: $dims:expr,
        }
    ) => {
        mod $name {
            use $crate::expr::Expression as _;
            use $crate::kernels::Solver as _;
            use $crate::matrix::ops::{max_abs, max_abs_diff};
            use $crate::matrix::random::random_seeded;
            use $crate::matrix::Matrix;

            fn cfg() -> $crate::kernels::BlockConfig {
                $crate::kernels::BlockConfig::default()
            }

            fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
                $crate::kernels::Kernel::Gemm {
                    transa: $crate::matrix::Trans::No,
                    a,
                    transb: $crate::matrix::Trans::No,
                    b,
                }
                .run_new(&cfg())
                .unwrap()
            }

            #[test]
            fn handled_operands_factor_to_the_declared_shape_without_mutation() {
                let solver = $solver;
                let (rows, cols) = ($shape)(16usize);
                let a = ($operand)(rows, cols, 11u64);
                assert!(solver.handles($structure, a.shape()));
                let before = a.clone();
                let f = solver.factor(&a, &cfg()).unwrap();
                assert_eq!(f.shape(), solver.factor_shape(a.shape()));
                assert_eq!(
                    max_abs_diff(&a, &before).unwrap(),
                    0.0,
                    "factoring must not mutate the operand"
                );
            }

            #[test]
            fn solving_against_the_operand_reconstructs_it() {
                // First Moore–Penrose condition: A·(A⁺·A) = A. For the
                // square solvers A⁺·A is the identity, so this doubles as a
                // factor-reconstruction check.
                let solver = $solver;
                let (rows, cols) = ($shape)(18usize);
                let a = ($operand)(rows, cols, 3u64);
                let f = solver.factor(&a, &cfg()).unwrap();
                let pinv_a = solver.solve_factored(&f, &a, &cfg()).unwrap();
                assert_eq!(pinv_a.shape(), (cols, cols));
                let back = gemm(&a, &pinv_a);
                let tol = 1e-9 * (rows as f64) * max_abs(&a).max(1.0);
                let diff = max_abs_diff(&back, &a).unwrap();
                assert!(diff <= tol, "reconstruction off by {diff} (tol {tol})");
            }

            #[test]
            fn residual_is_at_backward_stability_scale() {
                let solver = $solver;
                let (rows, cols) = ($shape)(22usize);
                let a = ($operand)(rows, cols, 5u64);
                let b = random_seeded(rows, 5, 6);
                let x = solver.solve(&a, &b, &cfg()).unwrap();
                assert_eq!(x.shape(), (cols, 5));
                let ax = gemm(&a, &x);
                let mut resid = ax;
                for j in 0..5 {
                    for i in 0..rows {
                        resid[(i, j)] -= b[(i, j)];
                    }
                }
                let measured = if rows == cols {
                    max_abs(&resid)
                } else {
                    // Least squares: only the normal-equations residual
                    // Aᵀ(A·X − B) vanishes.
                    max_abs(
                        &$crate::kernels::Kernel::Gemm {
                            transa: $crate::matrix::Trans::Yes,
                            a: &a,
                            transb: $crate::matrix::Trans::No,
                            b: &resid,
                        }
                        .run_new(&cfg())
                        .unwrap(),
                    )
                };
                let tol = 1e-10 * (rows as f64).max(1.0) * max_abs(&b).max(1.0);
                assert!(measured <= tol, "residual {measured} exceeds {tol}");
            }

            #[test]
            fn a_consistent_system_round_trips_its_solution_deterministically() {
                let solver = $solver;
                let (rows, cols) = ($shape)(20usize);
                let a = ($operand)(rows, cols, 7u64);
                let x0 = random_seeded(cols, 4, 9);
                let b = gemm(&a, &x0);
                let x = solver.solve(&a, &b, &cfg()).unwrap();
                let tol = 1e-7 * (rows as f64) * max_abs(&x0).max(1.0);
                let diff = max_abs_diff(&x, &x0).unwrap();
                assert!(diff <= tol, "round-trip off by {diff} (tol {tol})");
                // Same inputs, same bits: the pipeline is deterministic.
                let again = solver.solve(&a, &b, &cfg()).unwrap();
                assert_eq!(max_abs_diff(&x, &again).unwrap(), 0.0);
            }

            #[test]
            fn degenerate_dimensions_factor_and_solve() {
                let solver = $solver;
                for n in [0usize, 1] {
                    let (rows, cols) = ($shape)(n);
                    let a = ($operand)(rows, cols, 13u64);
                    let f = solver.factor(&a, &cfg()).unwrap();
                    assert_eq!(f.shape(), solver.factor_shape((rows, cols)));
                    for k in [0usize, 2] {
                        let b = random_seeded(rows, k, 14);
                        let x = solver.solve_factored(&f, &b, &cfg()).unwrap();
                        assert_eq!(x.shape(), (cols, k), "order {n}, rhs {k}");
                    }
                }
            }

            #[test]
            fn singular_inputs_error_instead_of_panicking() {
                let solver = $solver;
                let (rows, cols) = ($shape)(12usize);
                let poison = Matrix::zeros(rows, cols);
                let b = random_seeded(rows, 3, 15);
                assert!(
                    solver.solve(&poison, &b, &cfg()).is_err(),
                    "a zero operand must yield a structured error"
                );
            }

            #[test]
            fn the_planner_realisation_verifies_clean() {
                let solver = $solver;
                let expr = $crate::expr::TreeExpression::parse($text).unwrap();
                let algorithms = expr.algorithms(&$dims).unwrap();
                let alg = algorithms
                    .iter()
                    .find(|a| a.kernel_summary().contains(solver.factor_mnemonic()))
                    .expect("the expression reaches this solver's pipeline");
                let report = $crate::verify::verify_algorithm(alg);
                assert!(
                    !report.has_errors(),
                    "`{}` realisation of `{}` fails verification:\n{report}",
                    solver.name(),
                    $text
                );
            }

            #[test]
            fn factor_cache_identity_is_stable_and_kind_tagged() {
                let solver = $solver;
                let mnemonic = solver.factor_mnemonic();
                let expr = $crate::expr::TreeExpression::parse($text).unwrap();
                let identities = |algorithms: &[$crate::expr::Algorithm]| -> Vec<String> {
                    let alg = algorithms
                        .iter()
                        .find(|a| a.kernel_summary().contains(mnemonic))
                        .expect("the expression reaches this solver's pipeline");
                    $crate::expr::cacheable_identities(alg)
                        .into_iter()
                        .filter(|(i, _, _)| alg.calls[*i].op.mnemonic() == mnemonic)
                        .map(|(_, _, identity)| identity)
                        .collect()
                };
                let first = identities(&expr.algorithms(&$dims).unwrap());
                assert!(!first.is_empty(), "the factorisation call is cacheable");
                for identity in &first {
                    assert!(
                        identity.starts_with(&format!("{mnemonic}(")),
                        "identity `{identity}` must be tagged with the factor kind"
                    );
                }
                // Reproducible across independent enumerations: the cache
                // key is a function of the expression, not of the run.
                let second = identities(&expr.algorithms(&$dims).unwrap());
                assert_eq!(first, second);
            }
        }
    };
}
