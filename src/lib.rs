//! # lamb
//!
//! A Rust reproduction of **"FLOPs as a Discriminant for Dense Linear Algebra
//! Algorithms"** (López, Karlsson, Bientinesi — ICPP 2022), packaged as a
//! workspace of focused crates and re-exported here as a single facade.
//!
//! A linear algebra expression such as the matrix chain `A·B·C·D` or
//! `A·Aᵀ·B` can be evaluated by many mathematically equivalent sequences of
//! BLAS kernel calls. High-level tools usually pick the sequence with the
//! fewest floating-point operations. The paper — and this library — study
//! *anomalies*: problem instances where that minimum-FLOP choice is **not**
//! among the fastest algorithms.
//!
//! ## What is in the box
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`matrix`] | `lamb-matrix` | dense column-major matrices, views, triangular helpers |
//! | [`kernels`] | `lamb-kernels` | one blocked, packed, Rayon-parallel engine driving GEMM / SYRK / SYMM / TRMM / TRSM + FLOP models |
//! | [`expr`] | `lamb-expr` | expressions, kernel-call IR, algorithm enumeration (6 chain + 5 `A·Aᵀ·B` algorithms) |
//! | [`perfmodel`] | `lamb-perfmodel` | machine models, measured & simulated executors, performance profiles |
//! | [`select`] | `lamb-select` | FLOP/time scores, anomaly classification, selection policies |
//! | [`plan`] | `lamb-plan` | the unified `Planner` pipeline: plan → select → execute → verdict |
//! | [`verify`] | `lamb-verify` | pass-based static analyser for the kernel-call IR (def-use, shape, structure, cost, aliasing) |
//! | [`experiments`] | `lamb-experiments` | the paper's Experiments 1–3, figure/table data generators |
//!
//! ## Quickstart: the `Planner` is the front door
//!
//! ```
//! use lamb::prelude::*;
//!
//! // The paper's second expression: X := A·Aᵀ·B with A 80x514 and B 80x768.
//! let expr = AatbExpression::new();
//! let plan = Planner::for_expression(&expr)
//!     .policy(MinPredictedTime)   // FLOPs + kernel performance profiles
//!     .threshold(0.10)            // Experiment-1 anomaly threshold
//!     .plan(&[80, 514, 768])
//!     .unwrap();
//! assert_eq!(plan.algorithms.len(), 5);
//!
//! // Execute every algorithm on the simulated machine model and classify.
//! let outcome = plan.execute();
//!
//! // On this instance the cheapest (SYRK/SYMM-based) algorithms are *not*
//! // the fastest: a FLOP-count discriminant picks a slow algorithm, while
//! // the prediction-based policy stays near the optimum.
//! assert!(outcome.is_anomaly());
//! assert!(outcome.verdict.time_score > 0.10);
//! assert!(outcome.regret() < 0.05);
//!
//! // Batched sweeps fan out across worker threads with a shared
//! // prediction cache:
//! let grid: Vec<Vec<usize>> = (1..=4).map(|i| vec![80 * i, 514, 768]).collect();
//! let plans = Planner::for_expression(&expr).plan_grid(&grid);
//! assert_eq!(plans.len(), 4);
//! # assert!(plans.iter().all(|p| p.is_ok()));
//! ```
//!
//! The lower-level pieces remain available: `enumerate_*_algorithms` for the
//! raw algorithm sets, [`prelude::evaluate_instance`] for classification
//! without selection, and [`prelude::Strategy`] as a `Copy`able constructor
//! for the built-in [`prelude::SelectionPolicy`] implementations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conformance;

pub use lamb_experiments as experiments;
pub use lamb_expr as expr;
pub use lamb_kernels as kernels;
pub use lamb_matrix as matrix;
pub use lamb_perfmodel as perfmodel;
pub use lamb_plan as plan;
pub use lamb_select as select;
pub use lamb_verify as verify;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use lamb_experiments::{
        run_efficiency_line, run_experiment1, run_experiment2, run_experiment3, run_figure1,
        run_full_pipeline, run_random_search, LineConfig, PredictConfig, SearchConfig,
    };
    pub use lamb_expr::expr::Expr;
    pub use lamb_expr::generator::{generate_algorithms, GenerateError, RecognisedPattern};
    pub use lamb_expr::{
        enumerate_aatb_algorithms, enumerate_chain_algorithms, enumerate_expr_algorithms,
        enumerate_expr_algorithms_with, optimal_chain_order, AatbExpression, Algorithm,
        EnumerateOptions, Expression, KernelCall, KernelOp, MatrixChainExpression, ParseError,
        TreeExpression,
    };
    pub use lamb_kernels::{
        gemm, gemm_new, solve_auto, solver_for, symm, symm_new, syrk, syrk_new, BlockConfig,
        CholeskySolver, LuSolver, QrSolver, Solver,
    };
    pub use lamb_matrix::{Matrix, Side, Trans, Uplo};
    pub use lamb_perfmodel::{
        AlgorithmTiming, AnalyticEfficiencyModel, CalibrationStore, CallTimeTable, Executor,
        MachineModel, MeasuredExecutor, SimulatedExecutor, SimulatorConfig, StalenessWarning,
        StoreError,
    };
    pub use lamb_plan::{
        AlgorithmScore, BatchOutcome, BatchPlanner, BatchRequest, BatchStats, CachingExecutor,
        Plan, PlanError, PlanExecution, Planner, PredictionCache,
    };
    pub use lamb_select::{
        evaluate_instance, evaluate_strategy, Classification, Hybrid, InstanceEvaluation, MinFlops,
        MinPredictedTime, Oracle, SelectError, SelectionPolicy, Strategy,
    };
    pub use lamb_verify::{
        verify_algorithm, verify_call_table, Diagnostic, PassId, Report, Severity, VerifyExt,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable_together() {
        let algs = enumerate_chain_algorithms(&[100, 40, 120, 30, 90]).expect("valid chain");
        let mut exec = SimulatedExecutor::paper_like();
        let eval = evaluate_instance(&[100, 40, 120, 30, 90], &algs, &mut exec);
        let class = eval.classify(0.10);
        assert_eq!(eval.measurements.len(), 6);
        assert!(!class.cheapest.is_empty());
        assert!(!class.fastest.is_empty());
    }

    #[test]
    fn the_planner_front_door_is_reachable_from_the_prelude() {
        let expr = MatrixChainExpression::abcd();
        let plan = Planner::for_expression(&expr)
            .policy(MinFlops)
            .plan(&[100, 40, 120, 30, 90])
            .unwrap();
        assert_eq!(plan.algorithms.len(), 6);
        let outcome = plan.execute();
        assert_eq!(outcome.timings.len(), 6);
        assert!(outcome.best_seconds > 0.0);
    }
}
