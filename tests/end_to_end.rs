//! End-to-end integration tests: the full experimental pipeline on the
//! simulated executor, exercised through the public facade exactly as the
//! figure/table binaries do.

use lamb::experiments::{run_full_pipeline, LineConfig, PredictConfig, SearchConfig};
use lamb::prelude::*;

fn small_search(target: usize, samples: usize, seed: u64) -> SearchConfig {
    SearchConfig {
        target_anomalies: target,
        max_samples: samples,
        seed,
        ..SearchConfig::paper_aatb()
    }
}

#[test]
fn aatb_anomalies_are_abundant_and_chain_anomalies_are_rare() {
    // The headline qualitative result of the paper's Experiment 1.
    let mut exec = SimulatedExecutor::paper_like();
    let cfg = SearchConfig {
        target_anomalies: usize::MAX,
        max_samples: 1500,
        ..small_search(0, 0, 99)
    };
    let aatb = run_random_search(&AatbExpression::new(), &mut exec, &cfg);
    let chain = run_random_search(&MatrixChainExpression::abcd(), &mut exec, &cfg);
    assert!(
        aatb.abundance() > 0.03,
        "A*A^T*B anomalies should be abundant, got {:.3}",
        aatb.abundance()
    );
    assert!(
        chain.abundance() < 0.02,
        "chain anomalies should be rare, got {:.3}",
        chain.abundance()
    );
    assert!(aatb.abundance() > 3.0 * chain.abundance());
}

#[test]
fn anomaly_severity_can_reach_the_paper_headline() {
    // "performing 45% more FLOPs reduces the execution time by 40%": verify
    // that severe anomalies (time score >= 20%) exist in the search box.
    let mut exec = SimulatedExecutor::paper_like();
    let result = run_random_search(
        &AatbExpression::new(),
        &mut exec,
        &small_search(60, 4000, 7),
    );
    assert!(!result.anomalies.is_empty());
    let max_ts = result
        .anomalies
        .iter()
        .map(|a| a.time_score)
        .fold(0.0f64, f64::max);
    assert!(
        max_ts > 0.20,
        "expected a severe anomaly, max time score {max_ts}"
    );
}

#[test]
fn full_pipeline_produces_consistent_confusion_matrix() {
    let dir = std::env::temp_dir().join(format!("lamb-e2e-{}", std::process::id()));
    let expr = AatbExpression::new();
    let mut exec = SimulatedExecutor::paper_like();
    let out = run_full_pipeline(
        &expr,
        &mut exec,
        &small_search(3, 4000, 11),
        &LineConfig::paper().with_max_anomalies(2),
        &PredictConfig::paper(),
        &dir,
        "e2e",
    )
    .expect("pipeline runs");
    assert!(out.report.contains("Experiment 1"));
    assert!(out.report.contains("Experiment 3"));
    assert_eq!(out.artifacts.len(), 3);
    for (_, path) in &out.artifacts {
        let content = std::fs::read_to_string(path).expect("artifact written");
        assert!(!content.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_are_reproducible_for_a_fixed_seed() {
    let cfg = small_search(5, 3000, 1234);
    let mut e1 = SimulatedExecutor::paper_like();
    let mut e2 = SimulatedExecutor::paper_like();
    let r1 = run_random_search(&AatbExpression::new(), &mut e1, &cfg);
    let r2 = run_random_search(&AatbExpression::new(), &mut e2, &cfg);
    assert_eq!(r1, r2);
    // A different seed explores different instances.
    let mut e3 = SimulatedExecutor::paper_like();
    let r3 = run_random_search(
        &AatbExpression::new(),
        &mut e3,
        &small_search(5, 3000, 4321),
    );
    assert_ne!(r1.anomalies, r3.anomalies);
}

#[test]
fn figure1_data_reproduces_kernel_ordering() {
    let dir = std::env::temp_dir().join(format!("lamb-fig1-{}", std::process::id()));
    let mut exec = SimulatedExecutor::paper_like();
    let out = run_figure1(&mut exec, &[200, 600, 1000, 2000, 3000], &dir).unwrap();
    let csv = std::fs::read_to_string(&out.artifacts[0].1).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "size,gemm,syrk,symm,trmm,trsm,potrf,getrf,qr,symm_r,trmm_r,trsm_r"
    );
    for line in lines {
        let cells: Vec<f64> = line
            .split(',')
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        let gemm = cells[0];
        for &other in &cells[1..] {
            assert!(gemm >= other, "GEMM must dominate every kernel: {line}");
        }
        assert!(gemm > 0.0 && gemm <= 1.0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn triangular_expression_runs_end_to_end_with_trmm_in_the_plan() {
    // The triangular acceptance path: parse -> enumerate -> calibrate ->
    // batch-plan, with TRMM-based algorithms present in the resulting plans.
    let expr = TreeExpression::parse("L[lower]*A*B").unwrap();
    assert_eq!(expr.num_dims(), 3);

    // Single-expression planning sees the structured variants.
    let plan = Planner::for_expression(&expr)
        .policy(MinPredictedTime)
        .plan(&[96, 64, 48])
        .unwrap();
    assert!(
        plan.algorithms
            .iter()
            .any(|a| a.kernel_summary().contains("trmm")),
        "the plan must contain TRMM-based algorithms"
    );
    // The FLOP-minimal algorithm uses the structured kernel (half the FLOPs).
    let min_flops = plan.algorithms.iter().map(|a| a.flops()).min().unwrap();
    let cheapest = plan
        .algorithms
        .iter()
        .find(|a| a.flops() == min_flops)
        .unwrap();
    assert!(cheapest.kernel_summary().contains("trmm"));

    // Calibrate a store covering the triangular workload, then plan a batch
    // warm from it: no benchmarks, and the TRMM algorithms are still there.
    let requests = vec![
        BatchRequest::new(expr.clone(), vec![96, 64, 48]).unwrap(),
        BatchRequest::new(expr.clone(), vec![200, 120, 80]).unwrap(),
        BatchRequest::new(
            TreeExpression::parse("L[lower]^-1*B").unwrap(),
            vec![64, 32],
        )
        .unwrap(),
    ];
    let cold_planner = BatchPlanner::new();
    let cold = cold_planner.plan_batch(&requests);
    assert_eq!(cold.stats.failed, 0);
    let mut store = CalibrationStore::new(
        SimulatedExecutor::paper_like().machine().clone(),
        "simulated",
    );
    store.calls = cold_planner.snapshot_cache();
    assert!(store.coverage().contains_key("trmm"));
    assert!(store.coverage().contains_key("trsm"));

    let warm = BatchPlanner::new().with_store(&store).plan_batch(&requests);
    assert_eq!(warm.stats.cache_misses, 0, "store must cover the workload");
    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(c.chosen, w.chosen);
    }
    let solve_plan = warm.results[2].as_ref().unwrap();
    assert!(solve_plan.algorithms[0].kernel_summary().contains("trsm"));
}

#[test]
fn spd_solve_runs_end_to_end_and_matches_the_naive_solve() {
    // The SPD acceptance path: `S[spd]^-1*B` parses, enumerates the
    // POTRF + TRSM + TRSM realisation, and executes to numerical identity
    // (<= 1e-10 * norm) against an independent naive solve built from the
    // unblocked reference kernels.
    use lamb::kernels::{gemm_naive, potrf_naive, trsm_naive};
    use lamb::matrix::ops::{max_abs, max_abs_diff};
    use lamb::matrix::random::{random_seeded, random_spd};
    use lamb::matrix::{Matrix, Side, Trans, Uplo};

    let expr = TreeExpression::parse("S[spd]^-1*B").unwrap();
    assert_eq!(expr.num_dims(), 2);
    let (n, m) = (57, 23);
    let algs = expr.algorithms(&[n, m]).unwrap();
    assert_eq!(algs.len(), 1, "an SPD solve has exactly one realisation");
    assert_eq!(algs[0].kernel_summary(), "potrf,trsm,trsm");

    // Execute with the real blocked kernels through the measured executor.
    let seed = 424242;
    let executor = MeasuredExecutor::quick().with_seed(seed);
    let x = executor.compute_result(&algs[0]);

    // The naive reference: the same operands the executor materialises
    // (structure-aware, seeded by operand id), solved with the unblocked
    // scalar reference kernels.
    let s_info = algs[0].inputs().find(|o| o.name == "S").unwrap();
    let b_info = algs[0].inputs().find(|o| o.name == "B").unwrap();
    let s = random_spd(n, seed ^ s_info.id.index() as u64);
    let b = random_seeded(n, m, seed ^ b_info.id.index() as u64);
    let mut l = s.clone();
    potrf_naive(Uplo::Lower, &mut l.view_mut()).unwrap();
    let l = Matrix::from_fn(n, n, |i, j| if i >= j { l[(i, j)] } else { 0.0 });
    let mut y = Matrix::zeros(n, m);
    trsm_naive(
        Side::Left,
        Uplo::Lower,
        Trans::No,
        1.0,
        &l.view(),
        &b.view(),
        &mut y.view_mut(),
    )
    .unwrap();
    let mut x_ref = Matrix::zeros(n, m);
    trsm_naive(
        Side::Left,
        Uplo::Lower,
        Trans::Yes,
        1.0,
        &l.view(),
        &y.view(),
        &mut x_ref.view_mut(),
    )
    .unwrap();

    let tolerance = 1e-10 * max_abs(&x_ref).max(1.0);
    let diff = max_abs_diff(&x, &x_ref).unwrap();
    assert!(diff <= tolerance, "diff {diff} exceeds {tolerance}");

    // And the solution genuinely solves S·X = B (residual check against the
    // original operand, independent of any factorisation).
    let mut sx = Matrix::zeros(n, m);
    gemm_naive(
        Trans::No,
        Trans::No,
        1.0,
        &s.view(),
        &x.view(),
        0.0,
        &mut sx.view_mut(),
    )
    .unwrap();
    let residual = max_abs_diff(&sx, &b).unwrap();
    assert!(
        residual <= 1e-10 * max_abs(&b).max(1.0) * n as f64,
        "residual {residual}"
    );

    // The same expression plans and batch-plans like every other family,
    // with POTRF coverage landing in the calibration store.
    let plan = Planner::for_expression(&expr)
        .policy(MinPredictedTime)
        .plan(&[120, 48])
        .unwrap();
    assert!(plan.chosen_algorithm().kernel_summary().contains("potrf"));
    let requests = vec![
        BatchRequest::new(expr.clone(), vec![120, 48]).unwrap(),
        BatchRequest::new(
            TreeExpression::parse("S[spd]^-1*B*C").unwrap(),
            vec![96, 64, 24],
        )
        .unwrap(),
    ];
    let planner = BatchPlanner::new();
    let outcome = planner.plan_batch(&requests);
    assert_eq!(outcome.stats.failed, 0);
    let mut store = CalibrationStore::new(
        SimulatedExecutor::paper_like().machine().clone(),
        "simulated",
    );
    store.calls = planner.snapshot_cache();
    assert!(store.coverage().contains_key("potrf"));
    let warm = BatchPlanner::new().with_store(&store).plan_batch(&requests);
    assert_eq!(warm.stats.cache_misses, 0, "store must cover the workload");
}

#[test]
fn anomalies_cluster_into_regions_with_positive_thickness() {
    // Experiment 2 on the simulator: most anomalies should sit inside a
    // region thicker than a single instance.
    let expr = AatbExpression::new();
    let mut exec = SimulatedExecutor::paper_like();
    let search = run_random_search(&expr, &mut exec, &small_search(5, 4000, 3));
    let scans = lamb::experiments::scan_lines_around(
        &expr,
        &mut exec,
        &search.anomalies,
        &LineConfig::paper(),
    );
    assert_eq!(scans.len(), search.anomalies.len() * 3);
    let thick = scans.iter().filter(|s| s.thickness() > 19).count();
    assert!(
        thick * 2 >= scans.len(),
        "at least half of the scans should show a multi-instance region ({thick}/{})",
        scans.len()
    );
}

#[test]
fn strategy_with_performance_profiles_beats_min_flops_on_average() {
    // The paper's concluding conjecture, checked on random instances.
    let mut exec = SimulatedExecutor::paper_like();
    let mut flops_regret = 0.0;
    let mut predicted_regret = 0.0;
    let mut rng_dims = 20usize;
    let mut count = 0;
    for seed in 0..40u64 {
        rng_dims = (rng_dims * 7 + seed as usize * 13) % 1180 + 20;
        let d0 = (seed as usize * 37) % 500 + 20;
        let d1 = (seed as usize * 91) % 1180 + 20;
        let d2 = rng_dims;
        let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
        flops_regret += evaluate_strategy(Strategy::MinFlops, &algorithms, &mut exec).regret();
        predicted_regret +=
            evaluate_strategy(Strategy::MinPredictedTime, &algorithms, &mut exec).regret();
        count += 1;
    }
    assert!(count > 0);
    assert!(
        predicted_regret <= flops_regret,
        "profiles+flops ({predicted_regret}) should not lose to flops alone ({flops_regret})"
    );
}
