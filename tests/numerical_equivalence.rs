//! Cross-crate numerical validation: every enumerated algorithm, when
//! executed with the real kernels, computes the same matrix — the
//! "mathematically equivalent" premise of the paper — and the symbolic FLOP
//! counts match the closed-form formulas of Section 3.2.
//!
//! The interpreter here is written independently of the `MeasuredExecutor`
//! (it walks the kernel-call IR directly), so it also cross-checks the IR's
//! operand bookkeeping.

use lamb::expr::aatb::aatb_flop_formulas;
use lamb::expr::chain::abcd_flop_formulas;
use lamb::kernels::Kernel;
use lamb::matrix::ops::max_abs_diff;
use lamb::matrix::random::{random_seeded, random_spd, random_triangular};
use lamb::matrix::Structure;
use lamb::prelude::*;
use std::collections::HashMap;

/// Execute an algorithm on concrete operands by interpreting its kernel-call
/// sequence, returning the final result matrix.
fn interpret(alg: &Algorithm, seed: u64) -> Matrix {
    let cfg = BlockConfig::default();
    let mut store: HashMap<usize, Matrix> = HashMap::new();
    for info in &alg.operands {
        let m = match (info.role, info.structure) {
            (lamb::expr::OperandRole::Input, Structure::Triangular(uplo)) => {
                random_triangular(info.rows, uplo, seed ^ info.id.index() as u64)
            }
            (lamb::expr::OperandRole::Input, Structure::Spd) => {
                random_spd(info.rows, seed ^ info.id.index() as u64)
            }
            (lamb::expr::OperandRole::Input, Structure::General) => {
                random_seeded(info.rows, info.cols, seed ^ info.id.index() as u64)
            }
            _ => Matrix::zeros(info.rows, info.cols),
        };
        store.insert(info.id.index(), m);
    }
    for call in &alg.calls {
        let mut out = store
            .remove(&call.output.index())
            .expect("output allocated");
        let input = |i: usize| &store[&call.inputs[i].index()];
        if let KernelOp::CopyTriangle { uplo, .. } = call.op {
            out.symmetrize_from(uplo).unwrap();
        } else {
            let kernel = match call.op {
                KernelOp::Gemm { transa, transb, .. } => Kernel::Gemm {
                    transa,
                    a: input(0),
                    transb,
                    b: input(1),
                },
                KernelOp::Syrk { uplo, trans, .. } => Kernel::Syrk {
                    uplo,
                    trans,
                    a: input(0),
                },
                KernelOp::Symm { side, uplo, .. } => Kernel::Symm {
                    side,
                    uplo,
                    a_sym: input(0),
                    b: input(1),
                },
                KernelOp::Trmm {
                    side, uplo, trans, ..
                } => Kernel::Trmm {
                    side,
                    uplo,
                    trans,
                    l: input(0),
                    b: input(1),
                },
                KernelOp::Trsm {
                    side, uplo, trans, ..
                } => Kernel::Trsm {
                    side,
                    uplo,
                    trans,
                    l: input(0),
                    b: input(1),
                },
                KernelOp::Potrf { uplo, .. } => Kernel::Potrf { uplo, a: input(0) },
                KernelOp::Getrf { .. } => Kernel::Getrf { a: input(0) },
                KernelOp::Qr { .. } => Kernel::Qr { a: input(0) },
                KernelOp::Ormqr { .. } => Kernel::Ormqr {
                    f: input(0),
                    b: input(1),
                },
                KernelOp::FactorTri { uplo, .. } => Kernel::FactorTri { uplo, f: input(0) },
                KernelOp::PivotApply { side, .. } => Kernel::PivotApply {
                    side,
                    f: input(0),
                    b: input(1),
                },
                KernelOp::CopyTriangle { .. } => unreachable!("handled above"),
            };
            kernel.run_into(&mut out, &cfg).unwrap();
        }
        store.insert(call.output.index(), out);
    }
    let out_id = alg.output().expect("single output").id.index();
    store.remove(&out_id).expect("output computed")
}

#[test]
fn all_six_chain_algorithms_compute_the_same_matrix() {
    let dims = [45, 28, 37, 22, 31];
    let algorithms = enumerate_chain_algorithms(&dims).expect("valid chain");
    assert_eq!(algorithms.len(), 6);
    let results: Vec<Matrix> = algorithms.iter().map(|a| interpret(a, 77)).collect();
    for (i, r) in results.iter().enumerate().skip(1) {
        let diff = max_abs_diff(&results[0], r).unwrap();
        assert!(diff < 1e-9, "algorithm {} differs by {diff}", i + 1);
    }
    // And they match a direct naive evaluation ((AB)C)D performed elsewhere:
    // the first algorithm IS ((AB)C)D, so transitivity covers it.
}

#[test]
fn all_five_aatb_algorithms_compute_the_same_matrix() {
    let (d0, d1, d2) = (33, 26, 41);
    let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
    assert_eq!(algorithms.len(), 5);
    let results: Vec<Matrix> = algorithms.iter().map(|a| interpret(a, 13)).collect();
    for (i, r) in results.iter().enumerate().skip(1) {
        let diff = max_abs_diff(&results[0], r).unwrap();
        assert!(diff < 1e-9, "algorithm {} differs by {diff}", i + 1);
    }
    assert_eq!(results[0].shape(), (d0, d2));
}

#[test]
fn generator_output_is_numerically_consistent_with_direct_enumeration() {
    // Build A*A^T*B through the expression front end and check it produces
    // the same algorithm set (and the same numbers) as the direct enumerator.
    let (d0, d1, d2) = (24, 19, 29);
    let a = Expr::var("A", d0, d1);
    let b = Expr::var("B", d0, d2);
    let expr = a.clone().mul(a.t()).mul(b);
    let (pattern, from_generator) = generate_algorithms(&expr).unwrap();
    assert_eq!(pattern, RecognisedPattern::Aatb);
    let direct = enumerate_aatb_algorithms(d0, d1, d2);
    assert_eq!(from_generator.len(), direct.len());
    for (g, d) in from_generator.iter().zip(&direct) {
        assert_eq!(g.flops(), d.flops());
        let diff = max_abs_diff(&interpret(g, 5), &interpret(d, 5)).unwrap();
        assert!(diff < 1e-10);
    }
}

#[test]
fn triangular_algorithm_variants_compute_the_same_matrix() {
    // The TRMM/TRSM extension family: every enumerated algorithm of a
    // triangular expression agrees numerically with every other, across the
    // structured and GEMM-based realisations and across merge orders.
    for (text, dims) in [
        ("L[lower]*B", vec![37, 23]),
        ("U[upper]^T*A*B", vec![30, 21, 17]),
        ("L[lower]*L^T*B", vec![26, 19]),
        ("L[lower]^-1*A*B", vec![28, 22, 15]),
        ("L1[lower]*L2[lower]*B", vec![25, 12]),
    ] {
        let expr = TreeExpression::parse(text).unwrap();
        let algorithms = expr.algorithms(&dims).unwrap();
        assert!(!algorithms.is_empty(), "{text}");
        let results: Vec<Matrix> = algorithms.iter().map(|a| interpret(a, 91)).collect();
        for (alg, r) in algorithms.iter().zip(&results).skip(1) {
            let diff = max_abs_diff(&results[0], r).unwrap();
            assert!(diff < 1e-9, "{text}: `{}` differs by {diff}", alg.name);
        }
    }
}

#[test]
fn general_solve_and_least_squares_interpret_correctly() {
    use lamb::matrix::ops::{axpy, max_abs};
    use lamb::matrix::Trans;
    let cfg = BlockConfig::default();
    // Rebuild an input operand exactly as `interpret` seeds it.
    let operand = |alg: &Algorithm, name: &str, seed: u64| {
        let info = alg.operands.iter().find(|o| o.name == name).unwrap();
        random_seeded(info.rows, info.cols, seed ^ info.id.index() as u64)
    };

    // A^-1*B lowers to the LU pipeline and solves the system it claims to.
    let expr = TreeExpression::parse("A^-1*B").unwrap();
    let algorithms = expr.algorithms(&[26, 7]).unwrap();
    assert_eq!(algorithms.len(), 1);
    let x = interpret(&algorithms[0], 17);
    let a = operand(&algorithms[0], "A", 17);
    let b = operand(&algorithms[0], "B", 17);
    let mut resid = Kernel::Gemm {
        transa: Trans::No,
        a: &a,
        transb: Trans::No,
        b: &x,
    }
    .run_new(&cfg)
    .unwrap();
    axpy(-1.0, &b, &mut resid).unwrap();
    assert!(
        max_abs(&resid) < 1e-10 * 26.0,
        "A*X != B: {}",
        max_abs(&resid)
    );

    // A^+*b lowers to the QR pipeline; the result satisfies the normal
    // equations A^T(A*x - b) = 0 of the least-squares problem.
    let expr = TreeExpression::parse("A^+*b").unwrap();
    let algorithms = expr.algorithms(&[9, 34, 2]).unwrap();
    assert_eq!(algorithms.len(), 1);
    let x = interpret(&algorithms[0], 23);
    let a = operand(&algorithms[0], "A", 23);
    let b = operand(&algorithms[0], "b", 23);
    assert_eq!(a.shape(), (34, 9));
    assert_eq!(x.shape(), (9, 2));
    let mut resid = Kernel::Gemm {
        transa: Trans::No,
        a: &a,
        transb: Trans::No,
        b: &x,
    }
    .run_new(&cfg)
    .unwrap();
    axpy(-1.0, &b, &mut resid).unwrap();
    let normal = Kernel::Gemm {
        transa: Trans::Yes,
        a: &a,
        transb: Trans::No,
        b: &resid,
    }
    .run_new(&cfg)
    .unwrap();
    assert!(
        max_abs(&normal) < 1e-10 * 34.0,
        "normal equations violated: {}",
        max_abs(&normal)
    );

    // A^-1*B*C enumerates both merge orders; they agree numerically.
    let expr = TreeExpression::parse("A^-1*B*C").unwrap();
    let algorithms = expr.algorithms(&[20, 14, 11]).unwrap();
    assert!(algorithms.len() >= 2, "expected both merge orders");
    let results: Vec<Matrix> = algorithms.iter().map(|alg| interpret(alg, 41)).collect();
    for (alg, r) in algorithms.iter().zip(&results).skip(1) {
        let diff = max_abs_diff(&results[0], r).unwrap();
        assert!(diff < 1e-9, "`{}` differs by {diff}", alg.name);
    }
}

#[test]
fn right_side_expressions_plan_and_execute_against_naive_references() {
    // The right-side regression: `B*L^-1` (a TRSM from the right) and `A*S`
    // (a SYMM from the right) run the FULL pipeline — parse -> enumerate ->
    // plan -> execute with the real kernels — and the executed result agrees
    // with an independent naive evaluation to <= 1e-10 * n.
    use lamb::kernels::{gemm_naive, trsm_naive};
    use lamb::matrix::ops::max_abs;
    use lamb::matrix::{Side, Trans, Uplo};
    let seed = 7u64;
    // Rebuild an input operand exactly as the measured executor seeds it.
    let operand = |alg: &Algorithm, name: &str| -> Matrix {
        let info = alg.operands.iter().find(|o| o.name == name).unwrap();
        let s = seed ^ info.id.index() as u64;
        match info.structure {
            Structure::Triangular(uplo) => random_triangular(info.rows, uplo, s),
            Structure::Spd => random_spd(info.rows, s),
            Structure::General => random_seeded(info.rows, info.cols, s),
        }
    };
    let plan_and_execute = |text: &str, dims: &[usize], kernel: &str| -> (Algorithm, Matrix) {
        let expr = TreeExpression::parse(text).unwrap();
        let plan = Planner::for_expression(&expr)
            .strategy(Strategy::MinFlops)
            .plan(dims)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
        let chosen = plan.chosen_algorithm().clone();
        // The structured right-side realisation is in the enumerated set
        // (the chosen one may be a FLOP-tied GEMM realisation).
        assert!(
            plan.scores.iter().any(|s| s.name.contains(kernel)),
            "{text}: no enumerated algorithm uses {kernel}"
        );
        let exec = MeasuredExecutor::quick().with_seed(seed);
        let result = exec.compute_result(&chosen);
        (chosen, result)
    };

    // B*L^-1: the right-side triangular solve X = B * L^-1, i.e. X*L = B.
    let (m, n) = (18, 26);
    let (alg, x) = plan_and_execute("B*L[lower]^-1", &[m, n], "trsm");
    let l = operand(&alg, "L");
    let b = operand(&alg, "B");
    let mut x_ref = Matrix::zeros(m, n);
    trsm_naive(
        Side::Right,
        Uplo::Lower,
        Trans::No,
        1.0,
        &l.view(),
        &b.view(),
        &mut x_ref.view_mut(),
    )
    .unwrap();
    let diff = max_abs_diff(&x, &x_ref).unwrap();
    let tol = 1e-10 * (n as f64).max(max_abs(&x_ref));
    assert!(diff <= tol, "B*L^-1 differs from naive by {diff}");

    // A*S: the symmetric operand applied from the right (SYMM, side=Right).
    let (m, n) = (21, 17);
    let (alg, y) = plan_and_execute("A*S[spd]", &[m, n], "symm");
    let a = operand(&alg, "A");
    let s = operand(&alg, "S");
    let mut y_ref = Matrix::zeros(m, n);
    gemm_naive(
        Trans::No,
        Trans::No,
        1.0,
        &a.view(),
        &s.view(),
        0.0,
        &mut y_ref.view_mut(),
    )
    .unwrap();
    let diff = max_abs_diff(&y, &y_ref).unwrap();
    let tol = 1e-10 * (n as f64).max(max_abs(&y_ref));
    assert!(diff <= tol, "A*S differs from naive by {diff}");
    // The interpreter agrees too (independent of the measured executor).
    let interpreted = interpret(&alg, seed);
    assert!(max_abs_diff(&interpreted, &y_ref).unwrap() <= tol);
}

#[test]
fn chain_flop_counts_match_section_321_formulas() {
    let dims = [331, 279, 338, 854, 427];
    let algorithms = enumerate_chain_algorithms(&dims).expect("valid chain");
    let formulas = abcd_flop_formulas(&dims);
    for (alg, expected) in algorithms.iter().zip(formulas) {
        assert_eq!(alg.flops(), expected, "{}", alg.name);
    }
}

#[test]
fn aatb_flop_counts_match_section_322_formulas() {
    for (d0, d1, d2) in [
        (227, 260, 549),
        (80, 514, 768),
        (110, 301, 938),
        (1200, 20, 20),
    ] {
        let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
        let formulas = aatb_flop_formulas(d0, d1, d2);
        for (alg, expected) in algorithms.iter().zip(formulas) {
            assert_eq!(alg.flops(), expected, "{} at ({d0},{d1},{d2})", alg.name);
        }
    }
}

#[test]
fn measured_executor_classification_agrees_with_itself_on_repeat() {
    // The measured executor is noisy, but the FLOP side of the classification
    // and the structural invariants must be stable.
    let (d0, d1, d2) = (48, 40, 56);
    let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
    let mut exec = MeasuredExecutor::quick();
    let eval = evaluate_instance(&[d0, d1, d2], &algorithms, &mut exec);
    let c = eval.classify(0.10);
    // Algorithms 1 and 2 share the minimum FLOP count on every instance.
    assert!(c.cheapest.contains(&0));
    assert!(c.cheapest.contains(&1));
    assert!(!c.fastest.is_empty());
    assert!(c.time_score >= 0.0 && c.time_score <= 1.0);
    assert!(c.flop_score >= 0.0 && c.flop_score <= 1.0);
}
