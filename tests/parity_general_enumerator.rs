//! Parity: the general expression-tree enumerator reproduces the paper's
//! hand-written algorithm tables exactly.
//!
//! * For plain chains the derived algorithms are **bit-identical** to the
//!   legacy `enumerate_chain_algorithms` tables: same kernel calls (ops,
//!   operand wiring, labels) and same operand tables, in the same order.
//! * For `A·Aᵀ·B` the derived algorithms carry the same kernel-call
//!   sequences (operation + dimensions + transposition/uplo flags, operand
//!   wiring) and FLOP counts as the five paper algorithms, in the paper's
//!   order. Only the presentational strings (algorithm names, call labels)
//!   differ, and the executors key exclusively on the kernel-call
//!   signatures, so timings and verdicts are identical too.

use lamb::prelude::*;

/// The behavioural signature of an algorithm: ops and operand wiring.
fn signature(
    alg: &Algorithm,
) -> Vec<(KernelOp, Vec<lamb::expr::OperandId>, lamb::expr::OperandId)> {
    alg.calls
        .iter()
        .map(|c| (c.op.clone(), c.inputs.clone(), c.output))
        .collect()
}

#[test]
fn chain_algorithms_are_bit_identical_to_the_legacy_tables() {
    for dims in [
        vec![331, 279, 338, 854, 427],
        vec![13, 7, 11, 5, 3],
        vec![4, 5, 6],
        vec![40, 20, 30, 10, 30, 25],
    ] {
        let legacy = enumerate_chain_algorithms(&dims).expect("valid chain");
        let derived = MatrixChainExpression::new(dims.len() - 1)
            .algorithms(&dims)
            .expect("valid chain");
        assert_eq!(derived.len(), legacy.len(), "dims {dims:?}");
        for (d, l) in derived.iter().zip(&legacy) {
            assert_eq!(d.calls, l.calls, "calls (incl. labels) for {}", l.name);
            assert_eq!(d.operands, l.operands, "operand table for {}", l.name);
            assert_eq!(d.flops(), l.flops(), "FLOPs for {}", l.name);
        }
    }
}

#[test]
fn abcd_derivation_has_six_algorithms_with_the_paper_flop_formulas() {
    use lamb::expr::chain::abcd_flop_formulas;
    let dims = [331usize, 279, 338, 854, 427];
    let derived = MatrixChainExpression::abcd()
        .algorithms(&dims)
        .expect("valid chain");
    assert_eq!(derived.len(), 6);
    for (alg, expected) in derived.iter().zip(abcd_flop_formulas(&dims)) {
        assert_eq!(alg.flops(), expected, "{}", alg.name);
        assert_eq!(alg.kernel_summary(), "gemm,gemm,gemm");
    }
}

#[test]
fn aatb_derivation_reproduces_the_five_paper_algorithms_exactly() {
    use lamb::expr::aatb::aatb_flop_formulas;
    for (d0, d1, d2) in [(227, 260, 549), (80, 514, 768), (1200, 20, 20)] {
        let legacy = enumerate_aatb_algorithms(d0, d1, d2);
        let derived = AatbExpression::new()
            .algorithms(&[d0, d1, d2])
            .expect("valid instance");
        assert_eq!(derived.len(), 5, "({d0},{d1},{d2})");
        for (d, l) in derived.iter().zip(&legacy) {
            assert_eq!(
                signature(d),
                signature(l),
                "kernel-call sequence for {} at ({d0},{d1},{d2})",
                l.name
            );
            assert_eq!(d.flops(), l.flops(), "FLOPs for {}", l.name);
            // Operand shapes and roles agree entry by entry.
            assert_eq!(d.operands.len(), l.operands.len());
            for (od, ol) in d.operands.iter().zip(&l.operands) {
                assert_eq!(
                    (od.id, od.rows, od.cols, od.role),
                    (ol.id, ol.rows, ol.cols, ol.role)
                );
            }
        }
        // The paper's kernel compositions, in the paper's order.
        let kernels: Vec<String> = derived.iter().map(Algorithm::kernel_summary).collect();
        assert_eq!(
            kernels,
            vec![
                "syrk,symm",
                "syrk,copy,gemm",
                "gemm,symm",
                "gemm,gemm",
                "gemm,gemm"
            ],
            "({d0},{d1},{d2})"
        );
        for (alg, expected) in derived.iter().zip(aatb_flop_formulas(d0, d1, d2)) {
            assert_eq!(alg.flops(), expected);
        }
    }
}

#[test]
fn derived_and_legacy_aatb_sets_produce_identical_verdicts() {
    // The simulated executor keys on kernel-call signatures, so the derived
    // set must classify every instance exactly as the legacy tables do.
    for dims in [[80usize, 514, 768], [227, 260, 549], [400, 100, 1100]] {
        let legacy = enumerate_aatb_algorithms(dims[0], dims[1], dims[2]);
        let derived = AatbExpression::new().algorithms(&dims).expect("valid");
        let mut exec_a = SimulatedExecutor::paper_like();
        let mut exec_b = SimulatedExecutor::paper_like();
        let eval_legacy = evaluate_instance(&dims, &legacy, &mut exec_a);
        let eval_derived = evaluate_instance(&dims, &derived, &mut exec_b);
        let cl = eval_legacy.classify(0.10);
        let cd = eval_derived.classify(0.10);
        assert_eq!(cl.is_anomaly, cd.is_anomaly, "{dims:?}");
        assert_eq!(cl.cheapest, cd.cheapest, "{dims:?}");
        assert_eq!(cl.fastest, cd.fastest, "{dims:?}");
        assert!((cl.time_score - cd.time_score).abs() < 1e-12);
        for (ml, md) in eval_legacy
            .measurements
            .iter()
            .zip(&eval_derived.measurements)
        {
            assert_eq!(ml.flops, md.flops);
            assert!((ml.seconds - md.seconds).abs() < 1e-15);
        }
    }
}

#[test]
fn parsed_text_expressions_match_the_built_in_expressions() {
    // "A*B*C*D" parses to the same instance space and algorithm sets as
    // MatrixChainExpression::abcd(), and "A*A^T*B" to AatbExpression.
    let chain_text = TreeExpression::parse("A*B*C*D").unwrap();
    let chain = MatrixChainExpression::abcd();
    assert_eq!(chain_text.num_dims(), chain.num_dims());
    let dims = [331usize, 279, 338, 854, 427];
    let from_text = chain_text.algorithms(&dims).unwrap();
    let built_in = chain.algorithms(&dims).unwrap();
    assert_eq!(from_text.len(), built_in.len());
    for (t, b) in from_text.iter().zip(&built_in) {
        assert_eq!(signature(t), signature(b));
    }

    let aatb_text = TreeExpression::parse("A*A^T*B").unwrap();
    let aatb = AatbExpression::new();
    assert_eq!(aatb_text.num_dims(), 3);
    let dims = [80usize, 514, 768];
    let from_text = aatb_text.algorithms(&dims).unwrap();
    let built_in = aatb.algorithms(&dims).unwrap();
    for (t, b) in from_text.iter().zip(&built_in) {
        assert_eq!(signature(t), signature(b));
    }
}

#[test]
fn planner_top_k_keeps_the_cheapest_chain_orders() {
    // End to end: a parsed length-8 chain planned with pruning selects the
    // same algorithm (by FLOPs) that the chain DP proves optimal.
    let expr = TreeExpression::parse("A*B*C*D*E*F*G*H").unwrap();
    assert_eq!(expr.num_dims(), 9);
    let dims = [60usize, 20, 90, 30, 120, 40, 70, 25, 110];
    let planner = Planner::for_expression(&expr)
        .score_predictions(false)
        .top_k(8);
    let plan = planner.plan(&dims).unwrap();
    assert_eq!(plan.algorithms.len(), 8);
    let (dp_flops, _) = optimal_chain_order(&dims).unwrap();
    assert_eq!(plan.chosen_score().flops, dp_flops);
}
