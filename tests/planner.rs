//! Facade-level tests of the unified `Planner` pipeline:
//!
//! * **parity** — the planner reproduces the legacy `Strategy::select`
//!   choices for every built-in policy on both paper expressions,
//! * **cache** — predictions served through the shared cache are identical
//!   to uncached `predict_from_isolated_calls` timings,
//! * **determinism** — `plan_grid` fan-out yields the same choices and
//!   verdicts as planning the same instances one by one, on every run.

use lamb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_grid(num_dims: usize, instances: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..instances)
        .map(|_| (0..num_dims).map(|_| rng.random_range(20..=1200)).collect())
        .collect()
}

fn expressions() -> Vec<Box<dyn Expression>> {
    vec![
        Box::new(MatrixChainExpression::abcd()),
        Box::new(AatbExpression::new()),
    ]
}

#[test]
fn planner_reproduces_legacy_strategy_selection_on_both_paper_expressions() {
    for expr in expressions() {
        let grid = random_grid(expr.num_dims(), 25, 20220829);
        for strategy in [
            Strategy::MinFlops,
            Strategy::MinPredictedTime,
            Strategy::Hybrid { flop_margin: 0.5 },
            Strategy::Oracle,
        ] {
            let planner = Planner::for_expression(expr.as_ref()).strategy(strategy);
            for dims in &grid {
                // Legacy path: enumerate + Strategy::select on a fresh executor.
                let algorithms = expr.algorithms(dims).expect("enumeration succeeds");
                let mut legacy_exec = SimulatedExecutor::paper_like();
                let legacy = strategy
                    .select(&algorithms, &mut legacy_exec)
                    .expect("non-empty algorithm set");
                // New pipeline.
                let plan = planner.plan(dims).expect("planning succeeds");
                assert_eq!(
                    plan.chosen,
                    legacy,
                    "{} with {} on {:?}",
                    expr.name(),
                    strategy.name(),
                    dims
                );
                assert_eq!(plan.policy, strategy.name());
            }
        }
    }
}

#[test]
fn planner_execution_matches_legacy_evaluate_instance() {
    let expr = AatbExpression::new();
    let planner = Planner::for_expression(&expr).threshold(0.10);
    for dims in random_grid(3, 10, 7) {
        let algorithms = expr.algorithms(&dims).expect("enumeration succeeds");
        let mut legacy_exec = SimulatedExecutor::paper_like();
        let legacy_eval = evaluate_instance(&dims, &algorithms, &mut legacy_exec);
        let legacy_verdict = legacy_eval.classify(0.10);

        let outcome = planner.plan(&dims).unwrap().execute();
        assert_eq!(outcome.evaluation, legacy_eval, "on {dims:?}");
        assert_eq!(outcome.verdict, legacy_verdict, "on {dims:?}");
    }
}

#[test]
fn cached_predictions_are_identical_to_uncached_predictions() {
    for expr in expressions() {
        let planner = Planner::for_expression(expr.as_ref());
        let grid = random_grid(expr.num_dims(), 8, 99);
        for dims in &grid {
            let mut exec = SimulatedExecutor::paper_like();
            let predicted = planner.predict_instance(dims, &mut exec).unwrap();
            let mut plain_exec = SimulatedExecutor::paper_like();
            for (m, alg) in predicted
                .measurements
                .iter()
                .zip(expr.algorithms(dims).expect("enumeration succeeds"))
            {
                let plain = plain_exec.predict_from_isolated_calls(&alg);
                assert_eq!(m.seconds, plain.seconds, "{} on {:?}", alg.name, dims);
                assert_eq!(m.flops, plain.flops);
            }
        }
        // The cache must actually have been shared: repeated predictions on
        // the same grid produce hits and no new benchmarks.
        let (_, misses_before) = planner.cache_stats();
        for dims in &grid {
            let mut exec = SimulatedExecutor::paper_like();
            let _ = planner.predict_instance(dims, &mut exec).unwrap();
        }
        let (hits, misses_after) = planner.cache_stats();
        assert_eq!(misses_before, misses_after);
        assert!(hits > 0);
    }
}

#[test]
fn plan_grid_verdicts_are_deterministic_and_match_sequential_planning() {
    let expr = AatbExpression::new();
    let grid = random_grid(3, 40, 4210);

    let run = || {
        let planner = Planner::for_expression(&expr)
            .policy(MinPredictedTime)
            .threshold(0.10);
        planner
            .plan_grid(&grid)
            .into_iter()
            .map(|plan| {
                let plan = plan.expect("planning succeeds");
                let outcome = plan.execute();
                (plan.chosen, outcome.is_anomaly(), outcome.verdict.clone())
            })
            .collect::<Vec<_>>()
    };

    // Two parallel runs agree with each other (thread scheduling must not
    // leak into the results)...
    let first = run();
    let second = run();
    assert_eq!(first, second);

    // ...and with planning each instance sequentially on one thread.
    let sequential_planner = Planner::for_expression(&expr)
        .policy(MinPredictedTime)
        .threshold(0.10);
    let mut exec = SimulatedExecutor::paper_like();
    for (dims, parallel) in grid.iter().zip(&first) {
        let plan = sequential_planner.plan_with(dims, &mut exec).unwrap();
        let outcome = plan.execute_with(&mut exec);
        assert_eq!(plan.chosen, parallel.0, "chosen index on {dims:?}");
        assert_eq!(outcome.is_anomaly(), parallel.1, "verdict on {dims:?}");
        assert_eq!(outcome.verdict, parallel.2, "classification on {dims:?}");
    }
}

#[test]
fn plan_grid_reports_per_instance_errors_without_failing_the_batch() {
    let expr = AatbExpression::new();
    let planner = Planner::for_expression(&expr);
    let grid = vec![vec![100, 200, 300], vec![100, 200], vec![100, 0, 300]];
    let results = planner.plan_grid(&grid);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err(),
        &PlanError::DimensionMismatch {
            expected: 3,
            got: 2
        }
    );
    // A zero-dimension instance is degenerate but plannable.
    assert!(results[2].is_ok());
}
