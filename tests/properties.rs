//! Cross-crate property-based tests: invariants of the algorithm enumerators,
//! the simulated time model, and the anomaly classification, over randomly
//! drawn instances.

use lamb::matrix::ops::{max_abs, max_abs_diff};
use lamb::prelude::*;
use proptest::prelude::*;
// Both preludes export a `Strategy` item (proptest's trait, lamb's selection
// enum); name the one we mean explicitly.
use lamb::select::Strategy;

fn dims5() -> impl proptest::strategy::Strategy<Value = [usize; 5]> {
    [
        20usize..1200,
        20usize..1200,
        20usize..1200,
        20usize..1200,
        20usize..1200,
    ]
}

fn dims3() -> impl proptest::strategy::Strategy<Value = [usize; 3]> {
    [20usize..1200, 20usize..1200, 20usize..1200]
}

fn small_dims7() -> impl proptest::strategy::Strategy<Value = [usize; 7]> {
    [
        2usize..=12,
        2usize..=12,
        2usize..=12,
        2usize..=12,
        2usize..=12,
        2usize..=12,
        2usize..=12,
    ]
}

/// A dimension that is degenerate with high probability: zero or one half of
/// the time, otherwise tiny.
fn degenerate_dim() -> impl proptest::strategy::Strategy<Value = usize> {
    0usize..=3
}

fn degenerate_dims4() -> impl proptest::strategy::Strategy<Value = [usize; 4]> {
    [
        degenerate_dim(),
        degenerate_dim(),
        degenerate_dim(),
        degenerate_dim(),
    ]
}

/// The scenario texts whose union of kernel lowerings covers the full kernel
/// vocabulary: GEMM, SYRK, SYMM (+ the triangle copy), TRMM, TRSM, POTRF,
/// and the general-solve tier (GETRF, QR, ORMQR, FACTORTRI, LASWP).
const DEGENERATE_SCENARIOS: [&str; 12] = [
    "A*B*C",         // gemm
    "A*A^T*B",       // syrk, symm, copy, gemm
    "A*A^T",         // syrk + copy as the final merge
    "L[lower]*A*B",  // trmm (left)
    "L[lower]^-1*B", // trsm (left)
    "S[spd]^-1*B*C", // potrf + trsm (+ gemm order competition)
    "S[spd]*B",      // symm on a full-stored SPD operand (left)
    "A^-1*B",        // getrf + factortri + laswp + trsm (left pipeline)
    "A^+*b",         // qr + factortri + ormqr + trsm
    "B*L[lower]",    // trmm (right)
    "B*L[lower]^-1", // trsm (right)
    "A*S[spd]",      // symm (right)
];

/// Massage a drawn instance so the scenario is realisable: the QR-based
/// least-squares solve needs its operand at least as tall as it is wide
/// (dims are in flattened logical order, so `A^+` puts cols before rows).
fn realisable(text: &str, dims: &[usize]) -> Vec<usize> {
    let mut instance = dims.to_vec();
    if text.contains("^+") && instance[0] > instance[1] {
        instance.swap(0, 1);
    }
    instance
}

/// Execute every algorithm with the real kernels (via the measured executor)
/// and check well-formedness plus numerical identity of the results within
/// `1e-10 · ‖X‖`.
fn assert_numerically_identical(
    algorithms: &[Algorithm],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let executor =
        MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 1, 0)
            .with_seed(20220829);
    let mut reference: Option<lamb::matrix::Matrix> = None;
    for alg in algorithms {
        prop_assert!(alg.is_well_formed(), "{} is malformed", alg.name);
        let result = executor.compute_result(alg);
        match &reference {
            None => reference = Some(result),
            Some(expected) => {
                let tolerance = 1e-10 * max_abs(expected).max(1.0);
                let diff = max_abs_diff(expected, &result).expect("matching shapes");
                prop_assert!(
                    diff <= tolerance,
                    "{} differs by {diff} (tolerance {tolerance})",
                    alg.name
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_enumeration_invariants(dims in dims5()) {
        let algorithms = enumerate_chain_algorithms(&dims).expect("valid chain");
        prop_assert_eq!(algorithms.len(), 6);
        let (dp_flops, _) = optimal_chain_order(&dims).expect("valid chain");
        let min = algorithms.iter().map(|a| a.flops()).min().unwrap();
        prop_assert_eq!(dp_flops, min, "DP optimum must equal the cheapest enumerated algorithm");
        for alg in &algorithms {
            prop_assert!(alg.is_well_formed());
            prop_assert_eq!(alg.calls.len(), 3);
            let out = alg.output().unwrap();
            prop_assert_eq!((out.rows, out.cols), (dims[0], dims[4]));
        }
        // Algorithms 2 and 5 always tie in FLOPs (paper Section 3.2.1).
        prop_assert_eq!(algorithms[1].flops(), algorithms[4].flops());
    }

    #[test]
    fn aatb_enumeration_invariants(dims in dims3()) {
        let [d0, d1, d2] = dims;
        let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
        prop_assert_eq!(algorithms.len(), 5);
        for alg in &algorithms {
            prop_assert!(alg.is_well_formed());
            let out = alg.output().unwrap();
            prop_assert_eq!((out.rows, out.cols), (d0, d2));
        }
        // FLOP tie structure of Section 3.2.2.
        prop_assert_eq!(algorithms[0].flops(), algorithms[1].flops());
        prop_assert_eq!(algorithms[2].flops(), algorithms[3].flops());
        prop_assert!(algorithms[0].flops() <= algorithms[2].flops());
    }

    #[test]
    fn simulated_times_are_positive_finite_and_flop_monotone(dims in dims3()) {
        let [d0, d1, d2] = dims;
        let mut exec = SimulatedExecutor::paper_like();
        let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
        for alg in &algorithms {
            let t = exec.execute_algorithm(alg);
            prop_assert!(t.seconds.is_finite() && t.seconds > 0.0);
            prop_assert_eq!(t.per_call.len(), alg.calls.len());
        }
        // Doubling every dimension increases the work and the time.
        let bigger = enumerate_aatb_algorithms(d0 * 2, d1 * 2, d2 * 2);
        let tb = exec.execute_algorithm(&bigger[0]);
        prop_assert!(tb.seconds > exec.execute_algorithm(&algorithms[0]).seconds);
    }

    #[test]
    fn classification_invariants_hold(dims in dims3(), threshold in 0.0f64..0.3) {
        let [d0, d1, d2] = dims;
        let mut exec = SimulatedExecutor::paper_like();
        let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
        let eval = evaluate_instance(&dims, &algorithms, &mut exec);
        let c = eval.classify(threshold);
        prop_assert!(!c.cheapest.is_empty());
        prop_assert!(!c.fastest.is_empty());
        prop_assert!((0.0..=1.0).contains(&c.time_score));
        prop_assert!((0.0..=1.0).contains(&c.flop_score));
        let disjoint = !c.cheapest.iter().any(|i| c.fastest.contains(i));
        if c.is_anomaly {
            prop_assert!(disjoint, "anomalies require disjoint cheapest/fastest sets");
            prop_assert!(c.time_score > threshold);
        }
        if !disjoint {
            prop_assert!(!c.is_anomaly);
            prop_assert!(c.time_score == 0.0);
        }
        // Raising the threshold can only remove anomalies.
        let stricter = eval.classify(threshold + 0.2);
        if stricter.is_anomaly {
            prop_assert!(c.is_anomaly);
        }
    }

    #[test]
    fn isolated_prediction_is_close_to_sequence_time(dims in dims3()) {
        // The predictor of Experiment 3 ignores inter-kernel cache effects and
        // uses different noise, but it must stay within a modest band of the
        // sequence time — this is why it predicts most anomalies.
        let [d0, d1, d2] = dims;
        let mut exec = SimulatedExecutor::paper_like();
        for alg in enumerate_aatb_algorithms(d0, d1, d2) {
            let seq = exec.execute_algorithm(&alg).seconds;
            let pred = exec.predict_from_isolated_calls(&alg).seconds;
            let ratio = pred / seq;
            prop_assert!((0.85..=1.25).contains(&ratio), "ratio {ratio} for {}", alg.name);
        }
    }

    #[test]
    fn enumerated_chain_algorithms_execute_to_identical_matrices(
        dims in small_dims7(),
        p in 2usize..=6,
    ) {
        // Every multiplication order of a random chain, executed with the
        // real kernels through the measured executor, computes the same
        // matrix to within 1e-10 of its magnitude.
        let expr = MatrixChainExpression::new(p);
        let instance = &dims[..=p];
        let algorithms = expr.algorithms(instance).expect("valid chain instance");
        prop_assert_eq!(algorithms.len(), (1..p).product::<usize>());
        assert_numerically_identical(&algorithms)?;
    }

    #[test]
    fn enumerated_mixed_transpose_algorithms_execute_to_identical_matrices(
        dims in small_dims7(),
        scenario in 0usize..6,
    ) {
        // Same property over expressions that exercise the rewrite rules
        // (SYRK, SYMM, triangle copies, transposed factors).
        let texts = [
            "A*A^T*B",
            "A^T*A*B",
            "A*B*B^T",
            "A^T*B*A",
            "A*A^T*B*B^T",
            "(A*B)^T*C",
        ];
        let expr = TreeExpression::parse(texts[scenario]).expect("scenario parses");
        let instance = &dims[..expr.num_dims()];
        let algorithms = expr.algorithms(instance).expect("valid instance");
        prop_assert!(!algorithms.is_empty());
        assert_numerically_identical(&algorithms)?;
    }

    #[test]
    fn zero_and_unit_dimension_expressions_plan_and_execute(
        dims in degenerate_dims4(),
        scenario in 0usize..DEGENERATE_SCENARIOS.len(),
    ) {
        // The degenerate-dimension audit, end to end: parse -> enumerate ->
        // plan -> measured execution must neither panic (the pre-fix
        // CopyTriangle element count underflowed at n == 0) nor produce
        // numerically divergent results, for instances containing zero and
        // unit dimensions, across expressions that jointly reach all seven
        // kernel ops.
        let text = DEGENERATE_SCENARIOS[scenario];
        let expr = TreeExpression::parse(text).expect("scenario parses");
        let instance = &realisable(text, &dims[..expr.num_dims()]);
        let algorithms = expr.algorithms(instance).expect("degenerate instance enumerates");
        prop_assert!(!algorithms.is_empty());
        for alg in &algorithms {
            prop_assert!(alg.is_well_formed(), "{} is malformed", alg.name);
            // The degenerate-dimension FLOP/traffic audit: no underflow, no
            // wraparound-sized counts.
            prop_assert!(alg.flops() < u64::MAX / 2);
            prop_assert!(alg.output_traffic_elements() < u64::MAX / 2);
        }

        // Plan through the unified pipeline with the real (measured) kernels.
        let mut executor =
            MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 1, 0)
                .with_seed(20260728);
        let plan = Planner::for_expression(&expr)
            .strategy(Strategy::MinFlops)
            .plan_with(instance, &mut executor)
            .expect("degenerate instance plans");
        let out = plan.chosen_algorithm().output().expect("output declared");
        let (rows, cols) = expr.bind(instance).shape().expect("consistent shape");
        prop_assert_eq!((out.rows, out.cols), (rows, cols));

        // Every algorithm executes to the same matrix — including the empty
        // one, whose comparison is exact.
        assert_numerically_identical(&algorithms)?;
    }

    #[test]
    fn general_solve_pipelines_plan_verify_and_execute(
        dims in small_dims7(),
        zeros in degenerate_dims4(),
        scenario in 0usize..4,
        degenerate in 0usize..2,
    ) {
        // The general-solve tier end to end: random general-inverse and
        // least-squares expressions go through parse -> enumerate -> verify
        // -> plan -> measured execution, at ordinary and at zero/unit
        // dimensions. Every enumerated algorithm must verify clean (the LU
        // and QR pipelines carry packed factors the analyser tracks), and
        // all algorithms of an instance must agree numerically.
        let texts = ["A^-1*B", "A^-1*B*C", "A^+*b", "A^+*B*C"];
        let text = texts[scenario];
        let expr = TreeExpression::parse(text).expect("scenario parses");
        let drawn: &[usize] = if degenerate == 1 { &zeros } else { &dims };
        let instance = realisable(text, &drawn[..expr.num_dims()]);
        let algorithms = expr.algorithms(&instance).expect("solve instance enumerates");
        prop_assert!(!algorithms.is_empty());
        for alg in &algorithms {
            prop_assert!(alg.is_well_formed(), "{} is malformed", alg.name);
            let report = lamb::verify::verify_algorithm(alg);
            prop_assert!(
                !report.has_errors(),
                "`{text}` {instance:?} algorithm `{}` failed verification:\n{report}",
                alg.name
            );
        }
        let mut executor =
            MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 1, 0)
                .with_seed(20220829);
        let plan = Planner::for_expression(&expr)
            .strategy(Strategy::MinFlops)
            .plan_with(&instance, &mut executor)
            .expect("solve instance plans");
        let out = plan.chosen_algorithm().output().expect("output declared");
        let (rows, cols) = expr.bind(&instance).shape().expect("consistent shape");
        prop_assert_eq!((out.rows, out.cols), (rows, cols));
        assert_numerically_identical(&algorithms)?;
    }

    #[test]
    fn right_side_structured_algorithms_execute_to_identical_matrices(
        dims in small_dims7(),
        scenario in 0usize..6,
    ) {
        // The right-side extension family: structured operands applied from
        // the right (TRMM/TRSM/SYMM with side = Right), alone and inside
        // chains where left- and right-side realisations compete across
        // merge orders. Every enumerated algorithm computes the same matrix.
        let texts = [
            "B*L[lower]",
            "B*U[upper]^T",
            "B*L[lower]^-1",
            "A*S[spd]",
            "A*S[spd]*B",
            "A*B*L[lower]",
        ];
        let expr = TreeExpression::parse(texts[scenario]).expect("scenario parses");
        let instance = &dims[..expr.num_dims()];
        let algorithms = expr.algorithms(instance).expect("valid right-side instance");
        prop_assert!(!algorithms.is_empty());
        assert_numerically_identical(&algorithms)?;
    }

    #[test]
    fn oracle_strategy_is_never_beaten(dims in dims3()) {
        let [d0, d1, d2] = dims;
        let mut exec = SimulatedExecutor::paper_like();
        let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
        let oracle = evaluate_strategy(Strategy::Oracle, &algorithms, &mut exec);
        prop_assert!(oracle.regret() < 1e-9);
        for strategy in [Strategy::MinFlops, Strategy::MinPredictedTime, Strategy::Hybrid { flop_margin: 0.5 }] {
            let outcome = evaluate_strategy(strategy, &algorithms, &mut exec);
            prop_assert!(outcome.chosen_seconds + 1e-15 >= oracle.chosen_seconds);
        }
    }
}

#[test]
fn degenerate_scenarios_jointly_cover_every_kernel_op() {
    // The proptest above samples scenarios; this deterministic companion
    // pins the coverage claim: at unit dimensions (and at zero dimensions)
    // the scenario set reaches every kernel op in the vocabulary, and every
    // reached algorithm executes.
    let executor =
        MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 1, 0)
            .with_seed(11);
    for unit in [1usize, 0] {
        let mut reached: std::collections::BTreeSet<&'static str> =
            std::collections::BTreeSet::new();
        for text in DEGENERATE_SCENARIOS {
            let expr = TreeExpression::parse(text).unwrap();
            let dims = vec![unit; expr.num_dims()];
            for alg in expr.algorithms(&dims).unwrap() {
                for call in &alg.calls {
                    reached.insert(call.op.mnemonic());
                }
                let result = executor.compute_result(&alg);
                let out = alg.output().unwrap();
                assert_eq!((result.rows(), result.cols()), (out.rows, out.cols));
            }
        }
        assert_eq!(
            reached.into_iter().collect::<Vec<_>>(),
            vec![
                "copy",
                "factortri",
                "gemm",
                "getrf",
                "laswp",
                "ormqr",
                "potrf",
                "qr",
                "symm",
                "syrk",
                "trmm",
                "trsm"
            ],
            "unit = {unit}: the scenario set must reach every kernel op"
        );
    }
}
