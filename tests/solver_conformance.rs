//! The factorisation conformance kit, instantiated for all three stock
//! [`Solver`](lamb::kernels::Solver) implementations. Each macro invocation
//! expands to the full eight-test contract of
//! [`lamb::conformance`]: dispatch/purity, reconstruction, residual,
//! round-trip determinism, degenerate dimensions, poison inputs, verifier
//! cleanliness and factor-cache identity stability.

lamb::solver_conformance_suite! {
    mod cholesky_solver {
        solver: lamb::kernels::CholeskySolver,
        structure: lamb::matrix::Structure::Spd,
        shape: |n| (n, n),
        operand: |rows, _cols, seed| lamb::matrix::random::random_spd(rows, seed),
        expression: "S[spd]^-1*B",
        dims: [20, 4],
    }
}

lamb::solver_conformance_suite! {
    mod lu_solver {
        solver: lamb::kernels::LuSolver,
        structure: lamb::matrix::Structure::General,
        shape: |n| (n, n),
        operand: lamb::matrix::random::random_seeded,
        expression: "A^-1*B",
        dims: [20, 4],
    }
}

lamb::solver_conformance_suite! {
    mod qr_solver {
        solver: lamb::kernels::QrSolver,
        structure: lamb::matrix::Structure::General,
        // Tall by construction: three surplus rows at every nominal order.
        shape: |n| (n + 3, n),
        operand: lamb::matrix::random::random_seeded,
        expression: "A^+*b",
        dims: [6, 20, 3],
    }
}

/// The kit itself is host-agnostic: `solver_for` hands back the same three
/// implementations the suites above exercise, so a new `Solver` only needs
/// its own `solver_conformance_suite!` invocation to join the contract.
#[test]
fn the_kit_covers_every_dispatchable_solver() {
    use lamb::matrix::Structure;
    let dispatched: Vec<&'static str> = [
        (Structure::Spd, (8, 8)),
        (Structure::General, (8, 8)),
        (Structure::General, (12, 8)),
    ]
    .into_iter()
    .filter_map(|(s, shape)| lamb::kernels::solver_for(s, shape))
    .map(|s| s.name())
    .collect();
    assert_eq!(dispatched, vec!["cholesky", "lu", "qr"]);
}
