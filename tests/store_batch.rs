//! Facade-level tests of the persistence + batch-serving layer:
//!
//! * **round trip** — calibrate → save → load → `plan_batch` produces
//!   bit-identical predictions to the in-memory path, with a 100% cache hit
//!   rate (the PR's acceptance criterion);
//! * **refinement** — an incremental sweep merged into a stored calibration
//!   grows coverage without disturbing existing entries;
//! * **equivalence** — the batch front end agrees with single-expression
//!   `Planner::plan` calls on every instance.

use lamb::prelude::*;

/// A mixed workload: both paper expressions, Gram products, a pruned longer
/// chain, the triangular family (TRMM products and TRSM solves), and the SPD
/// family (SYMM products and Cholesky-realised solves), over a dimension
/// palette with deliberate signature overlap.
fn workload() -> Vec<BatchRequest> {
    let mut lines = String::new();
    let palette = [80usize, 160, 320, 514, 640, 768];
    for (i, text) in [
        "A*B*C*D",
        "A*A^T*B",
        "A*B*B^T",
        "A^T*A*B",
        "A*B*C*D*E",
        "L[lower]*A*B",
        "L[lower]^-1*B",
        "S[spd]*B",
        "S[spd]^-1*B*C",
    ]
    .iter()
    .enumerate()
    {
        let expr = TreeExpression::parse(text).unwrap();
        for j in 0..24 {
            let dims: Vec<String> = (0..expr.num_dims())
                .map(|d| palette[(i + 2 * j + 3 * d) % palette.len()].to_string())
                .collect();
            lines.push_str(&format!("{text} {}\n", dims.join(" ")));
        }
    }
    BatchRequest::parse_file(&lines).unwrap()
}

#[test]
fn store_round_trip_reproduces_in_memory_predictions_bit_identically() {
    let requests = workload();
    assert!(requests.len() >= 100, "acceptance: >= 100 expressions");

    // In-memory path: a cold batch planner benchmarks everything it needs.
    let cold_planner = BatchPlanner::new().top_k(8);
    let cold = cold_planner.plan_batch(&requests);
    assert_eq!(cold.stats.failed, 0);
    assert!(cold.stats.cache_misses > 0);

    // Calibrate -> save: persist the cold run's calibration as JSON.
    let mut store = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
    store.calls = cold_planner.snapshot_cache();
    let json = store.to_json();

    // Load -> plan_batch: a fresh planner, warm-started purely from the
    // serialised text, must reproduce every prediction bit for bit and
    // never benchmark.
    let reloaded = CalibrationStore::from_json(&json).unwrap();
    assert_eq!(reloaded.calls.len(), store.calls.len());
    let warm_planner = BatchPlanner::new().top_k(8).with_store(&reloaded);
    let warm = warm_planner.plan_batch(&requests);
    assert_eq!(warm.stats.cache_misses, 0, "warm batch must not benchmark");
    assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-12);

    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(c.chosen, w.chosen);
        assert_eq!(c.algorithms.len(), w.algorithms.len());
        for (cs, ws) in c.scores.iter().zip(&w.scores) {
            assert_eq!(
                cs.predicted_seconds.unwrap().to_bits(),
                ws.predicted_seconds.unwrap().to_bits(),
                "{}: prediction changed through the store round trip",
                c.expression
            );
        }
    }
    // Aggregates agree too (they are derived from the same predictions).
    assert_eq!(
        cold.stats.predicted_anomalies,
        warm.stats.predicted_anomalies
    );
    assert_eq!(
        cold.stats.chosen_predicted_seconds.to_bits(),
        warm.stats.chosen_predicted_seconds.to_bits()
    );
}

#[test]
fn incremental_sweeps_refine_a_store_without_disturbing_it() {
    let requests = workload();
    let (first_half, second_half) = requests.split_at(requests.len() / 2);

    // Sweep 1 covers the first half of the workload.
    let planner1 = BatchPlanner::new().top_k(8);
    let _ = planner1.plan_batch(first_half);
    let mut store = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
    store.calls = planner1.snapshot_cache();
    let covered_before = store.calls.len();

    // Sweep 2 covers the second half and merges in.
    let planner2 = BatchPlanner::new().top_k(8);
    let _ = planner2.plan_batch(second_half);
    let mut sweep = CalibrationStore::new(MachineModel::paper_xeon_silver_4210(), "simulated");
    sweep.calls = planner2.snapshot_cache();
    store.merge_from(&sweep).unwrap();
    assert!(store.calls.len() >= covered_before);
    assert_eq!(store.meta.sweeps, 2);

    // The merged store serves the whole workload without benchmarking.
    let warm = BatchPlanner::new().top_k(8).with_store(&store);
    let outcome = warm.plan_batch(&requests);
    assert_eq!(outcome.stats.cache_misses, 0);
}

#[test]
fn batch_planning_agrees_with_single_expression_planning() {
    let requests = workload();
    let outcome = BatchPlanner::new().top_k(8).plan_batch(&requests);
    for (req, result) in requests.iter().zip(&outcome.results).step_by(7) {
        let batch_plan = result.as_ref().unwrap();
        let solo_plan = Planner::for_expression(&req.expr)
            .policy(MinPredictedTime)
            .top_k(8)
            .plan(&req.dims)
            .unwrap();
        assert_eq!(batch_plan.chosen, solo_plan.chosen, "{}", req.text);
        for (b, s) in batch_plan.scores.iter().zip(&solo_plan.scores) {
            assert_eq!(b.flops, s.flops);
            assert_eq!(
                b.predicted_seconds.unwrap().to_bits(),
                s.predicted_seconds.unwrap().to_bits()
            );
        }
    }
}
