//! End-to-end sweep: every algorithm the enumerator emits for every built-in
//! scenario family must pass the `lamb-verify` static analyser with zero
//! error-severity diagnostics. This is the test-suite twin of the
//! `lamb verify --demo N` CLI smoke and of the CI `verify-smoke` job.

use lamb::prelude::*;
use lamb::verify::verify_algorithm;
use lamb_experiments::{all_scenarios, scenario_batch_requests};

#[test]
fn all_scenario_families_enumerate_verified_algorithms() {
    let scenarios = all_scenarios();
    assert!(!scenarios.is_empty(), "scenario registry must not be empty");
    let requests = scenario_batch_requests(&scenarios, 2, 20220808, 60, 900);
    let mut checked = 0usize;
    for req in &requests {
        let algorithms = req
            .expr
            .algorithms_pruned(&req.dims, None)
            .unwrap_or_else(|e| panic!("enumeration failed for `{}`: {e}", req.text));
        for alg in &algorithms {
            let report = verify_algorithm(alg);
            assert!(
                !report.has_errors(),
                "`{}` {:?} algorithm `{}` failed verification:\n{report}",
                req.text,
                req.dims,
                alg.name
            );
            checked += 1;
        }
    }
    assert!(
        checked > 100,
        "expected a substantial sweep, verified only {checked} algorithms"
    );
}

#[test]
fn the_facade_exposes_the_verifier() {
    let algs = enumerate_aatb_algorithms(80, 514, 768);
    for alg in &algs {
        // Both spellings: free function and extension trait.
        assert!(verify_algorithm(alg).is_clean());
        assert!(alg.verify().is_clean());
    }
}
