//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the slice of `criterion` its benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`Throughput`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and a re-export of
//! [`black_box`]. Measurements are simple medians over `sample_size`
//! iterations after a warm-up, printed as
//! `group/function/parameter  time: <median>`; there is no statistical
//! analysis, plotting or HTML report.
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark body runs exactly once so the benches double as smoke tests.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name plus a
/// parameter label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new<F: ToString, P: ToString>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements (here: FLOPs) processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling (a single untimed run here).
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Target measurement duration (used only to bound the sample count).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        if !self.criterion.test_mode {
            // One untimed warm-up run.
            let mut b = Bencher {
                iterations: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
        }
        let budget_start = Instant::now();
        for _ in 0..samples {
            let mut b = Bencher {
                iterations: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
            times.push(b.elapsed);
            if budget_start.elapsed() > self.measurement_time.max(Duration::from_millis(100)) {
                break;
            }
        }
        times.sort();
        let median = times
            .get(times.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{label:<60} time: {median:>12.3?}   thrpt: {rate:.3e} elem/s");
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{label:<60} time: {median:>12.3?}   thrpt: {rate:.3e} B/s");
            }
            _ => println!("{label:<60} time: {median:>12.3?}"),
        }
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Criterion {
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Begin a named benchmark group.
    pub fn benchmark_group<S: ToString>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }
}

/// Collect benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes --list to enumerate tests;
            // report none and exit cleanly.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                println!("0 tests, 0 benchmarks");
                return;
            }
            $( $group(); )+
        }
    };
}
