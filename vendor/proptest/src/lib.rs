//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the slice of `proptest` it uses: the
//! [`strategy::Strategy`] trait (with the [`strategy::Strategy::prop_map`]
//! adapter) implemented for ranges, tuples and arrays,
//! [`strategy::Just`], the [`prop_oneof!`] union, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros driven by
//! [`test_runner::ProptestConfig`].
//!
//! Cases are generated from a deterministic per-(test, case) seed, so every
//! failure is reproducible; the shrinking machinery of real proptest is not
//! implemented (a failure reports the case index instead of a minimal
//! counterexample).

pub mod strategy;
pub mod test_runner;

/// The items most property tests need, glob-imported.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Pick one of several strategies (all producing the same value type),
/// uniformly at random per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, y in 0u64..3, z in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn tuples_and_arrays_generate_componentwise((a, b) in pair(), dims in [1usize..4, 1usize..4, 1usize..4]) {
            prop_assert!((1..10).contains(&a) && (1..10).contains(&b));
            prop_assert_eq!(dims.len(), 3);
            prop_assert!(dims.iter().all(|d| (1..4).contains(d)));
        }

        #[test]
        fn oneof_and_just_produce_listed_values(v in prop_oneof![Just(2usize), Just(7usize)]) {
            prop_assert!(v == 2 || v == 7);
        }

        #[test]
        fn prop_map_transforms_generated_values(v in (1usize..5).prop_map(|x| x * 10)) {
            prop_assert!((10..50).contains(&v));
            prop_assert_eq!(v % 10, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_case() {
        use crate::strategy::Strategy as _;
        let s = 0usize..1_000_000;
        let mut r1 = crate::test_runner::TestRng::for_case("t", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 3);
        let mut r3 = crate::test_runner::TestRng::for_case("t", 4);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        let _ = s.generate(&mut r3); // different case: stream may differ
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
