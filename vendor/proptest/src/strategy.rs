//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy simply
/// generates a value from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `map` (the `prop_map` adapter of
    /// real proptest, minus shrinking).
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by [`crate::prop_oneof!`]).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies with a common value type.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build a union; `arms` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
}
