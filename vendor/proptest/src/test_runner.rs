//! Test-case execution support: configuration, errors, and the deterministic
//! per-case RNG.

use std::fmt;

/// Configuration for one [`crate::proptest!`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of a single generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG seeded from the property name and case index, so every
/// failure reproduces without recording a seed (SplitMix64 over an FNV-1a
/// hash of the name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
