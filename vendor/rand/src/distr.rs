//! Distributions (the subset the workspace uses: uniform `f64`).

use crate::Rng;
use std::fmt;

/// Error constructing a distribution (e.g. an inverted uniform range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl Uniform<f64> {
    /// Create a uniform distribution over `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the range is empty or not finite.
    pub fn new(low: f64, high: f64) -> Result<Self, Error> {
        if low < high && low.is_finite() && high.is_finite() {
            Ok(Uniform { low, high })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + rng.next_f64() * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let dist = Uniform::new(-1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn inverted_range_is_rejected() {
        assert!(Uniform::new(1.0, -1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }
}
