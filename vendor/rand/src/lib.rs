//! Offline, API-compatible subset of the `rand` crate (0.9 API surface).
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the small slice of `rand` it actually
//! uses: [`rngs::StdRng`] (a xoshiro256** generator, seedable from a `u64`),
//! the [`Rng`] / [`SeedableRng`] traits with `random_range`, and
//! [`distr::Uniform`] for `f64`. The statistical requirements here are mild —
//! reproducible uniform sampling of dimension tuples and matrix entries — and
//! xoshiro256** comfortably meets them. Streams are deterministic for a fixed
//! seed but are *not* bit-compatible with the real `rand` crate.

pub mod distr;
pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// A random number generator: the object-safe core plus convenience sampling.
pub trait Rng {
    /// Produce the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Types seedable from a `u64` (via SplitMix64 expansion, as in `rand`).
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly with a single call.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range using `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_dependent() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.random_range(20..=1200);
            assert!((20..=1200).contains(&x));
            let y: u64 = rng.random_range(0..10);
            assert!(y < 10);
            let z: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn random_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
