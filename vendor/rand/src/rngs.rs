//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard generator: xoshiro256**, seeded from a `u64`
/// through SplitMix64 (the seeding scheme recommended by its authors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point of xoshiro; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
