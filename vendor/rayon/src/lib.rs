//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the slice of `rayon` it uses:
//! [`current_num_threads`], [`prelude::IntoParallelIterator`] for `Vec<T>`
//! and ranges, and the `enumerate` / `map` / `for_each` / `collect`
//! combinators. Work **is** executed on real OS threads (via
//! [`std::thread::scope`]) with dynamic work stealing through a shared
//! atomic cursor, so the parallel GEMM/SYRK panels and the planner's grid
//! fan-out genuinely run concurrently; only rayon's lazy-splitting machinery
//! is simplified into an eager, materialised pipeline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel iterator will use: the
/// `RAYON_NUM_THREADS` environment variable when set (as in rayon), else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every item on a pool of scoped threads, preserving input
/// order in the result. Items are claimed through a shared atomic cursor so
/// threads self-balance across uneven work.
fn par_apply<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker panicked before storing a result")
        })
        .collect()
}

/// An eager "parallel iterator": a materialised list of items whose
/// consuming combinators run on multiple threads.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair every item with its index, like [`Iterator::enumerate`].
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Apply `f` to every item in parallel, preserving order.
    #[must_use]
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_apply(self.items, f),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _ = par_apply(self.items, f);
    }

    /// Collect the (already computed) items, preserving order.
    #[must_use]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// The traits and types most users need.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_order() {
        let out: Vec<i32> = (0usize..100)
            .into_par_iter()
            .map(|i| i as i32 * 2)
            .collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let seen = Mutex::new(HashSet::new());
        (0usize..257).into_par_iter().for_each(|i| {
            assert!(seen.lock().unwrap().insert(i));
        });
        assert_eq!(seen.lock().unwrap().len(), 257);
    }

    #[test]
    fn enumerate_matches_serial_enumerate() {
        let items = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = items.into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
